// Extended collectives: bcast, rooted reduce (incl. the DPML future-work
// extension), gather/scatter, allgather, reduce_scatter, barrier, and
// non-blocking allreduce. All data-mode, verified bit-for-bit.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "coll/bcast.hpp"
#include "coll/group_coll.hpp"
#include "coll/reduce.hpp"
#include "core/api.hpp"
#include "net/cluster.hpp"
#include "simmpi/verify.hpp"

namespace dpml::coll {
namespace {

using simmpi::Dtype;
using simmpi::Machine;
using simmpi::Rank;
using simmpi::ReduceOp;

std::vector<std::byte> pattern(std::size_t bytes, std::uint64_t seed) {
  std::vector<std::byte> v(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    v[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xff);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Broadcast

class BcastSweep : public ::testing::TestWithParam<
                       std::tuple<BcastAlgo, int /*nodes*/, int /*ppn*/,
                                  std::size_t /*bytes*/, int /*root*/>> {};

TEST_P(BcastSweep, DeliversRootPayloadEverywhere) {
  const auto [algo, nodes, ppn, bytes, root_in] = GetParam();
  Machine m(net::test_cluster(nodes), nodes, ppn);
  const int p = m.world_size();
  const int root = root_in % p;
  const auto payload = pattern(bytes, 42);
  std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) {
    bufs[w].resize(bytes);
    if (w == root) bufs[w] = payload;
  }
  m.run([&](Rank& r) -> sim::CoTask<void> {
    BcastArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.root = root;
    a.bytes = bytes;
    a.buf = simmpi::MutBytes{bufs[static_cast<std::size_t>(r.world_rank())]};
    co_await bcast(a, algo);
  });
  for (int w = 0; w < p; ++w) {
    EXPECT_EQ(bufs[w], payload) << "rank " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Bcast, BcastSweep,
    ::testing::Combine(
        ::testing::Values(BcastAlgo::binomial, BcastAlgo::scatter_allgather,
                          BcastAlgo::single_leader, BcastAlgo::automatic),
        ::testing::Values(1, 3, 4), ::testing::Values(1, 4),
        ::testing::Values<std::size_t>(1, 64, 4097), ::testing::Values(0, 5)),
    [](const auto& info) {
      std::string name = bcast_algo_name(std::get<0>(info.param));
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param)) + "_b" +
             std::to_string(std::get<3>(info.param)) + "_r" +
             std::to_string(std::get<4>(info.param));
    });

TEST(Bcast, ZeroBytes) {
  Machine m(net::test_cluster(2), 2, 2);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    BcastArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.bytes = 0;
    co_await bcast(a, BcastAlgo::binomial);
  });
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Rooted reduce

class ReduceSweep
    : public ::testing::TestWithParam<std::tuple<ReduceAlgo, int, int,
                                                 std::size_t, int>> {};

TEST_P(ReduceSweep, RootGetsExactResult) {
  const auto [algo, nodes, ppn, count, root_in] = GetParam();
  Machine m(net::test_cluster(nodes), nodes, ppn);
  const int p = m.world_size();
  const int root = root_in % p;
  std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(p));
  std::vector<std::byte> out(count * 4);
  for (int w = 0; w < p; ++w) {
    in[w] = simmpi::make_operand(Dtype::f32, count, w, ReduceOp::sum);
  }
  m.run([&](Rank& r) -> sim::CoTask<void> {
    ReduceArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.root = root;
    a.count = count;
    a.dt = Dtype::f32;
    a.op = ReduceOp::sum;
    a.send = simmpi::ConstBytes{in[static_cast<std::size_t>(r.world_rank())]};
    if (r.world_rank() == m.world().world_rank(root)) {
      a.recv = simmpi::MutBytes{out};
    }
    coll::DpmlParams dp;
    dp.leaders = 2;
    co_await reduce(a, algo, dp);
  });
  const auto ref =
      simmpi::reference_allreduce(Dtype::f32, count, p, ReduceOp::sum);
  EXPECT_EQ(out, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Reduce, ReduceSweep,
    ::testing::Combine(
        ::testing::Values(ReduceAlgo::binomial, ReduceAlgo::rsa_gather,
                          ReduceAlgo::single_leader, ReduceAlgo::dpml,
                          ReduceAlgo::automatic),
        ::testing::Values(1, 3, 4), ::testing::Values(1, 4),
        ::testing::Values<std::size_t>(1, 63, 1024), ::testing::Values(0, 7)),
    [](const auto& info) {
      std::string name = reduce_algo_name(std::get<0>(info.param));
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param)) + "_n" +
             std::to_string(std::get<3>(info.param)) + "_r" +
             std::to_string(std::get<4>(info.param));
    });

TEST(Reduce, DpmlManyLeaders) {
  Machine m(net::test_cluster(4), 4, 4);
  const std::size_t count = 257;
  const int p = m.world_size();
  std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(p));
  std::vector<std::byte> out(count * 4);
  for (int w = 0; w < p; ++w) {
    in[w] = simmpi::make_operand(Dtype::f32, count, w, ReduceOp::max);
  }
  m.run([&](Rank& r) -> sim::CoTask<void> {
    ReduceArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.root = 9;
    a.count = count;
    a.op = ReduceOp::max;
    a.send = simmpi::ConstBytes{in[static_cast<std::size_t>(r.world_rank())]};
    if (r.world_rank() == 9) a.recv = simmpi::MutBytes{out};
    coll::DpmlParams dp;
    dp.leaders = 4;
    co_await reduce_dpml(a, dp);
  });
  EXPECT_EQ(out, simmpi::reference_allreduce(Dtype::f32, count, p,
                                             ReduceOp::max));
}

// ---------------------------------------------------------------------------
// Gather / Scatter

TEST(Gather, BinomialCollectsBlocksInRankOrder) {
  for (int root : {0, 3}) {
    Machine m(net::test_cluster(3), 3, 2);
    const int p = m.world_size();
    const std::size_t block = 24;
    std::vector<std::vector<std::byte>> blocks(static_cast<std::size_t>(p));
    for (int w = 0; w < p; ++w) blocks[w] = pattern(block, 100 + w);
    std::vector<std::byte> out(static_cast<std::size_t>(p) * block);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      GatherArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.root = root;
      a.block_bytes = block;
      a.send = simmpi::ConstBytes{
          blocks[static_cast<std::size_t>(r.world_rank())]};
      if (r.world_rank() == root) a.recv = simmpi::MutBytes{out};
      co_await gather_binomial(a);
    });
    for (int w = 0; w < p; ++w) {
      EXPECT_EQ(0, std::memcmp(out.data() + static_cast<std::size_t>(w) * block,
                               blocks[w].data(), block))
          << "root " << root << " block " << w;
    }
  }
}

TEST(Scatter, BinomialDeliversEachBlock) {
  for (int root : {0, 4}) {
    Machine m(net::test_cluster(3), 3, 2);
    const int p = m.world_size();
    const std::size_t block = 16;
    std::vector<std::byte> all(static_cast<std::size_t>(p) * block);
    for (int w = 0; w < p; ++w) {
      auto b = pattern(block, 200 + w);
      std::memcpy(all.data() + static_cast<std::size_t>(w) * block, b.data(),
                  block);
    }
    std::vector<std::vector<std::byte>> outs(static_cast<std::size_t>(p));
    for (auto& o : outs) o.resize(block);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      ScatterArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.root = root;
      a.block_bytes = block;
      if (r.world_rank() == root) a.send = simmpi::ConstBytes{all};
      a.recv =
          simmpi::MutBytes{outs[static_cast<std::size_t>(r.world_rank())]};
      co_await scatter_binomial(a);
    });
    for (int w = 0; w < p; ++w) {
      EXPECT_EQ(outs[w], pattern(block, 200 + w)) << "root " << root
                                                  << " rank " << w;
    }
  }
}

// ---------------------------------------------------------------------------
// Allgather

class AllgatherSweep
    : public ::testing::TestWithParam<std::tuple<AllgatherAlgo, int, int>> {};

TEST_P(AllgatherSweep, EveryRankSeesAllBlocks) {
  const auto [algo, nodes, ppn] = GetParam();
  Machine m(net::test_cluster(nodes), nodes, ppn);
  const int p = m.world_size();
  const std::size_t block = 20;
  std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(p));
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) {
    in[w] = pattern(block, 300 + w);
    out[w].resize(static_cast<std::size_t>(p) * block);
  }
  m.run([&](Rank& r) -> sim::CoTask<void> {
    AllgatherArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.block_bytes = block;
    a.send = simmpi::ConstBytes{in[static_cast<std::size_t>(r.world_rank())]};
    a.recv = simmpi::MutBytes{out[static_cast<std::size_t>(r.world_rank())]};
    co_await allgather(a, algo);
  });
  for (int w = 0; w < p; ++w) {
    for (int b = 0; b < p; ++b) {
      EXPECT_EQ(0, std::memcmp(out[w].data() +
                                   static_cast<std::size_t>(b) * block,
                               in[b].data(), block))
          << "rank " << w << " block " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Allgather, AllgatherSweep,
    ::testing::Combine(::testing::Values(AllgatherAlgo::ring,
                                         AllgatherAlgo::recursive_doubling,
                                         AllgatherAlgo::automatic),
                       ::testing::Values(2, 3, 4), ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      const int algo_idx = static_cast<int>(std::get<0>(info.param));
      const char* name = algo_idx == 0 ? "ring" : algo_idx == 1 ? "rd" : "auto";
      return std::string(name) + "_" + std::to_string(std::get<1>(info.param)) +
             "x" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Reduce-scatter

TEST(ReduceScatter, RingBlocksAreExact) {
  for (int nodes : {2, 3}) {
    for (int ppn : {1, 4}) {
      Machine m(net::test_cluster(nodes), nodes, ppn);
      const int p = m.world_size();
      const std::size_t bc = 17;  // elements per rank
      const std::size_t total = bc * static_cast<std::size_t>(p);
      std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(p));
      std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
      for (int w = 0; w < p; ++w) {
        in[w] = simmpi::make_operand(Dtype::i64, total, w, ReduceOp::sum);
        out[w].resize(bc * 8);
      }
      m.run([&](Rank& r) -> sim::CoTask<void> {
        ReduceScatterArgs a;
        a.rank = &r;
        a.comm = &m.world();
        a.block_count = bc;
        a.dt = Dtype::i64;
        a.op = ReduceOp::sum;
        a.send =
            simmpi::ConstBytes{in[static_cast<std::size_t>(r.world_rank())]};
        a.recv =
            simmpi::MutBytes{out[static_cast<std::size_t>(r.world_rank())]};
        co_await reduce_scatter_ring(a);
      });
      const auto ref =
          simmpi::reference_allreduce(Dtype::i64, total, p, ReduceOp::sum);
      for (int w = 0; w < p; ++w) {
        EXPECT_EQ(0, std::memcmp(out[w].data(),
                                 ref.data() + static_cast<std::size_t>(w) *
                                                  bc * 8,
                                 bc * 8))
            << nodes << "x" << ppn << " rank " << w;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Barrier

TEST(BarrierColl, AllRanksLeaveAfterLastArrives) {
  for (BarrierAlgo algo : {BarrierAlgo::dissemination,
                           BarrierAlgo::single_leader,
                           BarrierAlgo::automatic}) {
    Machine m(net::test_cluster(3), 3, 4);
    std::vector<sim::Time> exits(static_cast<std::size_t>(m.world_size()));
    const sim::Time skew = sim::us(50.0);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      co_await r.compute(skew * r.world_rank());
      BarrierArgs a;
      a.rank = &r;
      a.comm = &m.world();
      co_await barrier(a, algo);
      exits[static_cast<std::size_t>(r.world_rank())] = r.engine().now();
    });
    const sim::Time last_arrival = skew * (m.world_size() - 1);
    for (int w = 0; w < m.world_size(); ++w) {
      EXPECT_GE(exits[static_cast<std::size_t>(w)], last_arrival)
          << "rank " << w << " left the barrier early";
    }
  }
}

TEST(BarrierColl, WorksOnSubCommunicator) {
  Machine m(net::test_cluster(2), 2, 2);
  const simmpi::Comm& sub = m.make_comm({0, 3});
  m.run([&](Rank& r) -> sim::CoTask<void> {
    if (!sub.contains(r.world_rank())) co_return;
    BarrierArgs a;
    a.rank = &r;
    a.comm = &sub;
    co_await barrier_dissemination(a);
  });
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Non-blocking allreduce

TEST(NonBlocking, TwoConcurrentAllreducesComplete) {
  Machine m(net::test_cluster(4), 4, 2);
  const std::size_t count = 128;
  const int p = m.world_size();
  std::vector<std::vector<std::byte>> in1(static_cast<std::size_t>(p));
  std::vector<std::vector<std::byte>> out1(static_cast<std::size_t>(p));
  std::vector<std::vector<std::byte>> in2(static_cast<std::size_t>(p));
  std::vector<std::vector<std::byte>> out2(static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) {
    in1[w] = simmpi::make_operand(Dtype::f32, count, w, ReduceOp::sum, 1);
    in2[w] = simmpi::make_operand(Dtype::f32, count, w, ReduceOp::sum, 2);
    out1[w].resize(count * 4);
    out2[w].resize(count * 4);
  }
  m.run([&](Rank& r) -> sim::CoTask<void> {
    const auto w = static_cast<std::size_t>(r.world_rank());
    core::AllreduceSpec spec;
    spec.algo = core::Algorithm::recursive_doubling;
    coll::CollArgs a1;
    a1.rank = &r;
    a1.comm = &m.world();
    a1.count = count;
    a1.send = simmpi::ConstBytes{in1[w]};
    a1.recv = simmpi::MutBytes{out1[w]};
    coll::CollArgs a2 = a1;
    a2.send = simmpi::ConstBytes{in2[w]};
    a2.recv = simmpi::MutBytes{out2[w]};
    a2.tag_base = 256;  // disjoint tag namespace for the concurrent op
    auto f1 = core::start_allreduce(a1, spec);
    auto f2 = core::start_allreduce(a2, spec);
    std::vector<std::shared_ptr<sim::Flag>> flags;
    flags.push_back(std::move(f1));
    flags.push_back(std::move(f2));
    co_await sim::wait_all(std::move(flags));
  });
  const auto ref1 =
      simmpi::reference_allreduce(Dtype::f32, count, p, ReduceOp::sum, 1);
  const auto ref2 =
      simmpi::reference_allreduce(Dtype::f32, count, p, ReduceOp::sum, 2);
  for (int w = 0; w < p; ++w) {
    EXPECT_EQ(out1[w], ref1);
    EXPECT_EQ(out2[w], ref2);
  }
}

TEST(NonBlocking, OverlapsWithCompute) {
  // The non-blocking allreduce should overlap with unrelated local compute:
  // total time < compute + blocking-allreduce time.
  auto run = [](bool overlap) {
    simmpi::RunOptions ropt;
    ropt.with_data = false;
    Machine m(net::test_cluster(4), 4, 2, ropt);
    m.run([&, overlap](Rank& r) -> sim::CoTask<void> {
      core::AllreduceSpec spec;
      spec.algo = core::Algorithm::recursive_doubling;
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 65536;
      a.inplace = true;
      if (overlap) {
        auto f = core::start_allreduce(a, spec);
        co_await r.compute(sim::us(200.0));
        co_await f->wait();
      } else {
        co_await core::run_allreduce(a, spec);
        co_await r.compute(sim::us(200.0));
      }
    });
    return m.now();
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace dpml::coll
