#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "simmpi/datatype.hpp"
#include "simmpi/verify.hpp"
#include "util/error.hpp"

namespace dpml::simmpi {
namespace {

template <typename T>
std::vector<std::byte> pack(const std::vector<T>& v) {
  std::vector<std::byte> out(v.size() * sizeof(T));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

template <typename T>
std::vector<T> unpack(const std::vector<std::byte>& b) {
  std::vector<T> out(b.size() / sizeof(T));
  std::memcpy(out.data(), b.data(), b.size());
  return out;
}

TEST(Dtype, Sizes) {
  EXPECT_EQ(dtype_size(Dtype::f32), 4u);
  EXPECT_EQ(dtype_size(Dtype::f64), 8u);
  EXPECT_EQ(dtype_size(Dtype::i32), 4u);
  EXPECT_EQ(dtype_size(Dtype::i64), 8u);
  EXPECT_EQ(dtype_size(Dtype::u8), 1u);
  EXPECT_STREQ(dtype_name(Dtype::f64), "f64");
}

TEST(Reduce, SumF32) {
  auto acc = pack<float>({1.f, 2.f, 3.f});
  auto in = pack<float>({10.f, 20.f, 30.f});
  reduce_inplace(ReduceOp::sum, Dtype::f32, 3, acc, in);
  EXPECT_EQ(unpack<float>(acc), (std::vector<float>{11.f, 22.f, 33.f}));
}

TEST(Reduce, MinMaxI32) {
  auto acc = pack<std::int32_t>({5, -2, 7});
  auto in = pack<std::int32_t>({3, 0, 9});
  auto acc2 = acc;
  reduce_inplace(ReduceOp::min, Dtype::i32, 3, acc, in);
  EXPECT_EQ(unpack<std::int32_t>(acc), (std::vector<std::int32_t>{3, -2, 7}));
  reduce_inplace(ReduceOp::max, Dtype::i32, 3, acc2, in);
  EXPECT_EQ(unpack<std::int32_t>(acc2), (std::vector<std::int32_t>{5, 0, 9}));
}

TEST(Reduce, ProdF64) {
  auto acc = pack<double>({2.0, 3.0});
  auto in = pack<double>({4.0, 0.5});
  reduce_inplace(ReduceOp::prod, Dtype::f64, 2, acc, in);
  EXPECT_EQ(unpack<double>(acc), (std::vector<double>{8.0, 1.5}));
}

TEST(Reduce, BitwiseI64) {
  auto acc = pack<std::int64_t>({0b1100});
  auto in = pack<std::int64_t>({0b1010});
  auto acc2 = acc;
  reduce_inplace(ReduceOp::band, Dtype::i64, 1, acc, in);
  EXPECT_EQ(unpack<std::int64_t>(acc)[0], 0b1000);
  reduce_inplace(ReduceOp::bor, Dtype::i64, 1, acc2, in);
  EXPECT_EQ(unpack<std::int64_t>(acc2)[0], 0b1110);
}

TEST(Reduce, BitwiseOnFloatThrows) {
  auto acc = pack<float>({1.f});
  auto in = pack<float>({2.f});
  EXPECT_THROW(reduce_inplace(ReduceOp::band, Dtype::f32, 1, acc, in),
               util::InvariantError);
}

TEST(Reduce, EmptySpansAreNoop) {
  reduce_inplace(ReduceOp::sum, Dtype::f32, 128, {}, {});  // must not crash
}

TEST(Reduce, SizeMismatchThrows) {
  auto acc = pack<float>({1.f, 2.f});
  auto in = pack<float>({1.f});
  EXPECT_THROW(reduce_inplace(ReduceOp::sum, Dtype::f32, 2, acc, in),
               util::InvariantError);
}

TEST(Reduce, ZeroCount) {
  std::vector<std::byte> empty;
  reduce_inplace(ReduceOp::sum, Dtype::f32, 0, empty, empty);
}

TEST(Op, BuiltinAndUser) {
  Op sum = ReduceOp::sum;
  EXPECT_FALSE(sum.is_user());
  EXPECT_EQ(sum.name(), "sum");

  // User op: acc = acc - in, elementwise on f32.
  Op user{UserOpFn([](Dtype dt, std::size_t count, MutBytes acc, ConstBytes in) {
    ASSERT_EQ(dt, Dtype::f32);
    for (std::size_t i = 0; i < count; ++i) {
      float a;
      float b;
      std::memcpy(&a, acc.data() + i * 4, 4);
      std::memcpy(&b, in.data() + i * 4, 4);
      a -= b;
      std::memcpy(acc.data() + i * 4, &a, 4);
    }
  })};
  EXPECT_TRUE(user.is_user());
  auto acc = pack<float>({10.f});
  auto in = pack<float>({4.f});
  user.apply(Dtype::f32, 1, acc, in);
  EXPECT_EQ(unpack<float>(acc)[0], 6.f);
}

TEST(Verify, OperandsAreDeterministic) {
  auto a = make_operand(Dtype::f32, 64, 3, ReduceOp::sum, 7);
  auto b = make_operand(Dtype::f32, 64, 3, ReduceOp::sum, 7);
  EXPECT_EQ(a, b);
  auto c = make_operand(Dtype::f32, 64, 4, ReduceOp::sum, 7);
  EXPECT_NE(a, c);
}

TEST(Verify, ReferenceMatchesManualFold) {
  const std::size_t n = 16;
  auto ref = reference_allreduce(Dtype::i64, n, 5, ReduceOp::sum, 3);
  std::vector<std::int64_t> acc(n, 0);
  for (int r = 0; r < 5; ++r) {
    auto op = unpack<std::int64_t>(make_operand(Dtype::i64, n, r, ReduceOp::sum, 3));
    for (std::size_t i = 0; i < n; ++i) acc[i] += op[i];
  }
  EXPECT_EQ(unpack<std::int64_t>(ref), acc);
}

TEST(Verify, FloatSumsAreOrderIndependent) {
  // Operand magnitudes are capped so that f32 sums over many ranks stay
  // exactly representable: fold in reverse order and compare bitwise.
  const std::size_t n = 32;
  const int p = 64;
  auto fwd = reference_allreduce(Dtype::f32, n, p, ReduceOp::sum, 5);
  std::vector<std::byte> rev = make_operand(Dtype::f32, n, p - 1, ReduceOp::sum, 5);
  for (int r = p - 2; r >= 0; --r) {
    auto in = make_operand(Dtype::f32, n, r, ReduceOp::sum, 5);
    reduce_inplace(ReduceOp::sum, Dtype::f32, n, rev, in);
  }
  EXPECT_EQ(fwd, rev);
}

}  // namespace
}  // namespace dpml::simmpi
