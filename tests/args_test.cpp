#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/error.hpp"

namespace dpml::util {
namespace {

Args make(std::initializer_list<const char*> argv_list) {
  static std::vector<std::string> storage;
  storage.assign(argv_list.begin(), argv_list.end());
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(Args, ParsesFlagsAndPositionals) {
  // Note: a bare word after "--verbose" would be consumed as its value, so
  // positionals come first (the documented convention).
  auto a = make({"prog", "run", "extra", "--nodes", "16", "--ppn=28",
                 "--verbose"});
  EXPECT_EQ(a.program(), "prog");
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "run");
  EXPECT_EQ(a.positional()[1], "extra");
  EXPECT_EQ(a.get_int("nodes", 0), 16);
  EXPECT_EQ(a.get_int("ppn", 0), 28);
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_FALSE(a.has("missing"));
  EXPECT_EQ(a.get("missing", "dflt"), "dflt");
}

TEST(Args, BooleanBeforeAnotherFlag) {
  auto a = make({"prog", "--flag", "--other", "3"});
  EXPECT_TRUE(a.get_bool("flag"));
  EXPECT_EQ(a.get_int("other", 0), 3);
}

TEST(Args, TypedGetters) {
  auto a = make({"prog", "--x", "2.5", "--b", "yes", "--n", "-7"});
  EXPECT_DOUBLE_EQ(a.get_double("x", 0), 2.5);
  EXPECT_TRUE(a.get_bool("b"));
  EXPECT_EQ(a.get_int("n", 0), -7);
  EXPECT_DOUBLE_EQ(a.get_double("absent", 1.25), 1.25);
}

TEST(Args, ParseBytes) {
  EXPECT_EQ(Args::parse_bytes("17"), 17u);
  EXPECT_EQ(Args::parse_bytes("4K"), 4096u);
  EXPECT_EQ(Args::parse_bytes("4k"), 4096u);
  EXPECT_EQ(Args::parse_bytes("2M"), 2u << 20);
  EXPECT_EQ(Args::parse_bytes("1G"), 1u << 30);
  EXPECT_THROW(Args::parse_bytes(""), InvariantError);
  EXPECT_THROW(Args::parse_bytes("K"), InvariantError);
}

TEST(Args, ParseSizeRange) {
  const auto r = Args::parse_size_range("4:1K");
  ASSERT_EQ(r.size(), 5u);  // 4, 16, 64, 256, 1024
  EXPECT_EQ(r.front(), 4u);
  EXPECT_EQ(r.back(), 1024u);
  const auto r2 = Args::parse_size_range("8:64:2");
  ASSERT_EQ(r2.size(), 4u);  // 8, 16, 32, 64
  EXPECT_THROW(Args::parse_size_range("bad"), std::exception);
  EXPECT_THROW(Args::parse_size_range("16:4"), InvariantError);
}

TEST(Args, UnusedDetection) {
  auto a = make({"prog", "--used", "1", "--typo", "2"});
  (void)a.get_int("used", 0);
  const auto u = a.unused();
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], "typo");
}

}  // namespace
}  // namespace dpml::util
