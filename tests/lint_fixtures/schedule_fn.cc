// dpmllint fixture: uses of the deprecated schedule_fn compatibility shim.
// Never compiled; scanned by dpmllint_test.
#include <functional>

struct Engine {
  void schedule_fn(long, std::function<void()>);  // schedule-fn
  template <typename F>
  void schedule_call(long, F&&);
};

void legacy(Engine& e) {
  e.schedule_fn(10, [] {});  // schedule-fn
}

void modern(Engine& e) {
  e.schedule_call(10, [] {});  // pooled path: fine
}

// Masked contexts must NOT fire:
//   schedule_fn mentioned in a comment is fine
const char* doc = "schedule_fn is deprecated";  // string mention is fine

void boundary() {
  // Identifier boundary: not the shim's name.
  struct X {
    void reschedule_fnord() {}
  } x;
  x.reschedule_fnord();
}
