// dpmllint fixture: code that bakes in the canonical message-matching order
// the schedule explorer (dpmlmc, src/mc/) deliberately varies — positional
// access into Matcher queues and ordering comparisons on engine seq numbers.
// Never compiled; scanned by dpmllint_test.
#include <cstdint>
#include <deque>

struct Envelope {
  int ctx = 0;
  int src = 0;
  int tag = 0;
};

struct Event {
  std::uint64_t seq = 0;
};

struct Matcher {
  const std::deque<Envelope>& unexpected() const;
  const std::deque<Envelope*>& posted() const;
};

int first_sender(const Matcher& m) {
  return m.unexpected()[0].src;  // match-order-assumption (subscript)
}

int oldest_posted(const Matcher& m) {
  return m.posted().front()->tag;  // match-order-assumption (front)
}

int nth(const Matcher& m, std::size_t i) {
  return m.unexpected().at(i).ctx;  // match-order-assumption (at)
}

bool arrived_before(const Event& a, const Event& b) {
  return a.seq < b.seq;  // match-order-assumption (relational seq)
}

bool arrived_after(const Event* a, const Event* b) {
  return a->seq > b->seq;  // match-order-assumption (relational seq)
}

std::size_t fine(const Matcher& m, const Event& a, const Event& b) {
  // Size queries and equality lookups make no order assumption:
  std::size_t n = m.unexpected().size() + m.posted().size();
  if (a.seq == b.seq) ++n;

  // Iterating to *search* by (ctx, src, tag) is the sanctioned idiom:
  for (const Envelope& env : m.unexpected()) {
    if (env.ctx == 7) ++n;
  }

  // seq as a counter (no ordering) is fine:
  Event e;
  e.seq += 1;

  // Masked contexts must not fire:
  //   m.unexpected()[0] in a comment is fine
  const char* doc = "posted().front() in a string is fine";
  (void)doc;
  return n;
}
