// dpmllint fixture: a lambda coroutine capturing by reference. The coroutine
// frame refers to the closure object, which dies when spawn() returns — the
// canonical dangling pattern the coro-ref-capture rule exists for. This file
// is never compiled; it is scanned by dpmllint_test.
#include <cstddef>

struct Engine {
  template <typename F>
  void spawn(F f);
};

struct Task {};

void dangles(Engine& e) {
  int local = 42;
  e.spawn([&]() -> Task {
    co_await local;  // frame outlives `local`
  });
}

void dangles_named_capture(Engine& e) {
  int counter = 0;
  e.spawn([&counter]() -> Task { co_await counter; });
}

void fine_value_capture(Engine& e) {
  int local = 42;
  e.spawn([local]() -> Task { co_await local; });  // by value: not flagged
}

void fine_non_coroutine(Engine& e) {
  int local = 42;
  e.spawn([&] { return local + 1; });  // no co_await: not flagged
}
