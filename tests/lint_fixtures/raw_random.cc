// dpmllint fixture: raw randomness and wall-clock reads. Never compiled;
// scanned by dpmllint_test.
#include <cstdlib>
#include <ctime>
#include <random>

int draw() {
  return rand();  // raw-random
}

void seed_it() {
  std::random_device rd;  // raw-random
  std::mt19937 gen(rd());  // raw-random
  srand(static_cast<unsigned>(time(nullptr)));  // raw-random + wall-clock
}

long stamp() {
  return clock();  // wall-clock
}

// Masked contexts must NOT fire:
//   rand() in a comment is fine
const char* doc = "call rand() for chaos";  // rand() in a string is fine

int operand(int x) { return x; }
int uses_operand() { return operand(3); }  // identifier boundary: not rand()

struct Timer {
  long time(int) { return 0; }
};
long member_call(Timer& t) { return t.time(0); }  // member .time(): fine
