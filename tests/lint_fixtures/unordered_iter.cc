// dpmllint fixture: range-for over unordered containers. Never compiled;
// scanned by dpmllint_test.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Stats {
  std::unordered_map<int, long> per_rank_;
  std::unordered_set<std::string> names_;
  std::map<int, long> ordered_;

  long total() const {
    long sum = 0;
    for (const auto& [rank, v] : per_rank_) {  // unordered-iteration
      sum += v;
    }
    return sum;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (const auto& name : names_) {  // unordered-iteration
      n += name.size();
    }
    return n;
  }

  long ordered_total() const {
    long sum = 0;
    for (const auto& [rank, v] : ordered_) {  // std::map: fine
      sum += v;
    }
    return sum;
  }
};
