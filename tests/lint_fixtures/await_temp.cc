// dpmllint fixture: braced temporaries living across a co_await suspension.
// gcc 12 double-destroys the extra temporary (frame slot reuse, bad free) —
// the await-temporary rule exists to keep the pattern out of the tree.
// Never compiled; scanned by dpmllint_test.
struct Task {};
struct Spec {
  const char* algo;
};
Task run_collective(int kind, int args, const Spec& spec);
Task send(int dst, int tag, int n);

Task caller(int kind, int a) {
  co_await run_collective(kind, a, {"rd"});  // await-temporary
  co_await run_collective(kind, a, {"ring"});  // await-temporary

  // The fixed idiom: bind to a named local first.
  const Spec s{"rd"};
  co_await run_collective(kind, a, s);

  // Empty braces pass a default span and carry no destructor: fine.
  co_await send(1, 7, 64);
}
