// dpmllint fixture: direct Engine::payload_pool() access outside the data
// plane (sim/dataplane.hpp owns payload capture/release so the time-only
// plane can elide buffers). Never compiled; scanned by dpmllint_test.
#include <cstddef>
#include <vector>

struct BufferPool {
  std::vector<std::byte> acquire(std::size_t);
  void release(std::vector<std::byte>);
};

struct Engine {
  BufferPool& payload_pool();  // payload-plane (declaration outside the plane)
};

void transport_hot_path(Engine& e) {
  auto buf = e.payload_pool().acquire(64);  // payload-plane
  e.payload_pool().release(std::move(buf));  // payload-plane
}

void fine(Engine& e) {
  (void)e;
  // Locals merely *named* payload_pool are not calls into the engine:
  std::vector<std::size_t> payload_pool;
  payload_pool.push_back(1);

  // Masked contexts must not fire:
  //   payload_pool() mentioned in a comment is fine
  const char* doc = "payload_pool() is plane-internal";
  (void)doc;
}
