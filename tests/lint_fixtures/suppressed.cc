// dpmllint fixture: every violation here carries a suppression comment, so
// the file must lint clean. Never compiled; scanned by dpmllint_test.
// dpmllint: allow-file(wall-clock)
#include <cstdlib>
#include <ctime>
#include <unordered_map>

int draw() {
  return rand();  // dpmllint: allow(raw-random)
}

int draw_prev_line() {
  // dpmllint: allow(raw-random)
  return rand();
}

long stamp() {
  return clock();  // covered by the allow-file(wall-clock) above
}

long stamp2() { return time(nullptr); }  // also allow-file covered

struct S {
  std::unordered_map<int, int> m_;
  int total() const {
    int sum = 0;
    // dpmllint: allow(all)
    for (const auto& [k, v] : m_) sum += v;
    return sum;
  }
};
