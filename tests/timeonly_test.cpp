// Time-only data plane (docs/MODEL.md §10): payload elision must never move
// simulated time. The golden parity suite locks bit-identical results —
// every registered (kind, algorithm) on the payload plane (with full data
// verification) versus the time-only plane, on pristine, perturbed, and
// flow-level-fabric machines. Further suites cover the TimeOnlyPlane
// contract itself (metadata-only captures, POD rank state, payload bytes
// rejected), the up-front conflict errors, calendar-vs-heap scheduler
// equivalence, a randomized property sweep, and executor byte-identity for
// time-only batches.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "check/check.hpp"
#include "coll/registry.hpp"
#include "core/executor.hpp"
#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "sim/dataplane.hpp"
#include "sim/timeonly.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpml::core {
namespace {

// Everything a run reports that could possibly drift: the full timing
// surface plus the event count.
struct Digest {
  double avg, best, worst, median, p99;
  std::uint64_t events;

  bool operator==(const Digest& o) const {
    return avg == o.avg && best == o.best && worst == o.worst &&
           median == o.median && p99 == o.p99 && events == o.events;
  }
};

Digest digest(const MeasureResult& r) {
  return {r.avg_us, r.best_us, r.worst_us, r.median_us, r.p99_us, r.events};
}

enum class Variant { pristine, perturbed, fabric };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::pristine: return "pristine";
    case Variant::perturbed: return "perturbed";
    default: return "fabric";
  }
}

MeasureOptions variant_opts(Variant v) {
  MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  switch (v) {
    case Variant::pristine:
      break;
    case Variant::perturbed:
      opt.perturb = perturb::PerturbSpec::parse("jitter=lognormal:sigma=0.2");
      opt.repetitions = 2;
      break;
    case Variant::fabric:
      opt.fabric = fabric::FabricLevel::links;
      break;
  }
  return opt;
}

// ---------------------------------------------------------------------------
// Golden parity: payload (with full data verification) vs time-only must be
// bit-identical in simulated time and event count for every registered
// algorithm of every kind, on every machine variant.

class GoldenParity : public ::testing::TestWithParam<Variant> {};

TEST_P(GoldenParity, EveryKindEveryAlgorithmBitIdentical) {
  const Variant v = GetParam();
  const int nodes = 5;  // non-power-of-two world: ragged partitions covered
  const int ppn = 2;
  const auto cfg = net::test_cluster(nodes);
  std::uint64_t total_elided = 0;
  for (const coll::CollKind kind : coll::kAllCollKinds) {
    for (const std::string& algo :
         coll::CollRegistry::instance().names(kind)) {
      const auto& d = coll::CollRegistry::instance().at(kind, algo);
      if (d.caps.min_comm_size > nodes * ppn) continue;
      if (d.caps.needs_payload) continue;  // rejected by design, not compared
      for (const std::size_t bytes : {std::size_t{512}, std::size_t{8192}}) {
        if (kind == coll::CollKind::barrier && bytes != 512) continue;
        coll::CollSpec spec;
        spec.algo = algo;
        spec.leaders = 3;

        MeasureOptions payload = variant_opts(v);
        payload.with_data = true;
        MeasureOptions timeonly = variant_opts(v);
        timeonly.data_mode = sim::DataMode::timeonly;

        const std::string what = std::string(variant_name(v)) + " " +
                                 coll::coll_kind_name(kind) + "/" + algo +
                                 " bytes=" + std::to_string(bytes);
        const auto p = measure_collective(kind, cfg, nodes, ppn, bytes, spec,
                                          payload);
        const auto t = measure_collective(kind, cfg, nodes, ppn, bytes, spec,
                                          timeonly);
        EXPECT_TRUE(p.verified) << what;
        EXPECT_TRUE(digest(p) == digest(t))
            << what << ": payload avg=" << p.avg_us << " events=" << p.events
            << " vs time-only avg=" << t.avg_us << " events=" << t.events;
        // Zero-byte messages (barrier) and fabric-offloaded payloads (the
        // SHArP designs) legitimately elide nothing; the aggregate below
        // still proves the counter is wired.
        total_elided += t.perf.elided_bytes;
        EXPECT_EQ(p.perf.elided_bytes, 0u) << what;
      }
    }
  }
  EXPECT_GT(total_elided, 0u) << "no time-only run elided any payload";
}

INSTANTIATE_TEST_SUITE_P(Variants, GoldenParity,
                         ::testing::Values(Variant::pristine,
                                           Variant::perturbed,
                                           Variant::fabric),
                         [](const auto& info) {
                           return std::string(variant_name(info.param));
                         });

// ---------------------------------------------------------------------------
// The plane contract.

TEST(TimeOnlyPlane, RankStateIsCompactPod) {
  static_assert(std::is_trivially_copyable_v<sim::TimeOnlyRankState>);
  static_assert(sizeof(sim::TimeOnlyRankState) == 32,
                "one cache-line holds two rank records");
}

TEST(TimeOnlyPlane, CapturesMetadataOnly) {
  sim::TimeOnlyPlane plane(4);
  sim::MsgMeta meta;
  meta.src = 2;
  meta.bytes = 4096;
  meta.op_cost = 7;
  const std::vector<std::byte> got = plane.capture(meta, nullptr, 0);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(plane.elided_bytes(), 4096u);
  EXPECT_EQ(plane.elided_messages(), 1u);
  EXPECT_EQ(plane.rank_state(2).messages, 1u);
  EXPECT_EQ(plane.rank_state(2).bytes, 4096u);
  EXPECT_EQ(plane.rank_state(2).op_cost_total, 7);
  EXPECT_EQ(plane.rank_state(0).messages, 0u);
  EXPECT_EQ(plane.recycler(), nullptr);
  EXPECT_EQ(plane.mode(), sim::DataMode::timeonly);
}

TEST(TimeOnlyPlane, PayloadBytesAreRejected) {
  sim::TimeOnlyPlane plane(2);
  sim::MsgMeta meta;
  meta.src = 0;
  meta.bytes = 8;
  const std::byte data[8] = {};
  try {
    plane.capture(meta, data, sizeof(data));
    FAIL() << "payload bytes reached the time-only plane without an error";
  } catch (const util::InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("time-only"), std::string::npos)
        << e.what();
  }
}

TEST(TimeOnlyPlane, SchedulerResolution) {
  using sim::DataMode;
  using sim::SchedulerKind;
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::automatic,
                                   DataMode::timeonly),
            SchedulerKind::calendar);
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::automatic,
                                   DataMode::payload),
            SchedulerKind::binary_heap);
  // Explicit requests always win.
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::calendar,
                                   DataMode::payload),
            SchedulerKind::calendar);
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::binary_heap,
                                   DataMode::timeonly),
            SchedulerKind::binary_heap);
}

// ---------------------------------------------------------------------------
// Conflicts are rejected up front, naming the offending option and a remedy.

void expect_throw_containing(const std::function<void()>& fn,
                             const std::vector<std::string>& needles) {
  try {
    fn();
    FAIL() << "expected util::InvariantError";
  } catch (const util::InvariantError& e) {
    const std::string msg = e.what();
    for (const std::string& n : needles) {
      EXPECT_NE(msg.find(n), std::string::npos)
          << "message '" << msg << "' lacks '" << n << "'";
    }
  }
}

TEST(TimeOnlyConflicts, WithDataIsRejectedWithRemedy) {
  const auto cfg = net::test_cluster(2);
  coll::CollSpec spec;
  MeasureOptions opt;
  opt.data_mode = sim::DataMode::timeonly;
  opt.with_data = true;
  expect_throw_containing(
      [&] {
        measure_collective(coll::CollKind::allreduce, cfg, 2, 2, 256, spec,
                           opt);
      },
      {"with_data", "data_mode=timeonly", "data_mode=payload"});
}

TEST(TimeOnlyConflicts, SimcheckIsRejectedWithRemedy) {
  const auto cfg = net::test_cluster(2);
  coll::CollSpec spec;
  MeasureOptions opt;
  opt.data_mode = sim::DataMode::timeonly;
  opt.check = check::CheckLevel::strict;
  expect_throw_containing(
      [&] {
        measure_collective(coll::CollKind::allreduce, cfg, 2, 2, 256, spec,
                           opt);
      },
      {"check=strict", "data_mode=timeonly", "check=off"});
}

TEST(TimeOnlyConflicts, NeedsPayloadAlgorithmIsRejected) {
  // A synthetic design whose control flow inspects payload values; no
  // in-tree algorithm sets the flag, so register one just for this test.
  static const bool registered = [] {
    coll::CollDescriptor d;
    d.name = "test-needs-payload";
    d.kind = coll::CollKind::allreduce;
    d.caps.needs_payload = true;
    d.make = [](coll::CollArgs, const coll::CollSpec&) -> sim::CoTask<void> {
      co_return;
    };
    coll::CollRegistry::instance().add(std::move(d));
    return true;
  }();
  ASSERT_TRUE(registered);
  const auto cfg = net::test_cluster(2);
  coll::CollSpec spec;
  spec.algo = "test-needs-payload";
  MeasureOptions opt;
  opt.data_mode = sim::DataMode::timeonly;
  expect_throw_containing(
      [&] {
        measure_collective(coll::CollKind::allreduce, cfg, 2, 2, 256, spec,
                           opt);
      },
      {"test-needs-payload", "needs_payload", "data_mode=payload"});
}

// ---------------------------------------------------------------------------
// The calendar queue is an implementation detail: switching schedulers can
// never change simulated results, in either data mode.

TEST(CalendarScheduler, BitIdenticalToBinaryHeap) {
  const int nodes = 5;
  const auto cfg = net::test_cluster(nodes);
  for (const bool timeonly : {false, true}) {
    for (const std::size_t bytes : {std::size_t{512}, std::size_t{8192}}) {
      coll::CollSpec spec;
      spec.algo = "dpml-auto";
      MeasureOptions opt;
      opt.iterations = 2;
      opt.warmup = 1;
      if (timeonly) opt.data_mode = sim::DataMode::timeonly;

      MeasureOptions heap = opt;
      heap.scheduler = sim::SchedulerKind::binary_heap;
      MeasureOptions cal = opt;
      cal.scheduler = sim::SchedulerKind::calendar;

      const auto h = measure_collective(coll::CollKind::allreduce, cfg,
                                        nodes, 2, bytes, spec, heap);
      const auto c = measure_collective(coll::CollKind::allreduce, cfg,
                                        nodes, 2, bytes, spec, cal);
      EXPECT_TRUE(digest(h) == digest(c))
          << (timeonly ? "timeonly" : "payload") << " bytes=" << bytes
          << ": heap avg=" << h.avg_us << " vs calendar avg=" << c.avg_us;
    }
  }
}

TEST(CalendarScheduler, NamesRoundTrip) {
  using sim::SchedulerKind;
  EXPECT_EQ(sim::scheduler_kind_by_name("calendar"), SchedulerKind::calendar);
  EXPECT_EQ(sim::scheduler_kind_by_name("binary-heap"),
            SchedulerKind::binary_heap);
  EXPECT_EQ(sim::scheduler_kind_by_name("auto"), SchedulerKind::automatic);
  EXPECT_STREQ(sim::scheduler_kind_name(SchedulerKind::calendar), "calendar");
  expect_throw_containing(
      [] { (void)sim::scheduler_kind_by_name("fifo"); },
      {"fifo", "calendar"});
  EXPECT_EQ(sim::data_mode_by_name("time-only"), sim::DataMode::timeonly);
  EXPECT_STREQ(sim::data_mode_name(sim::DataMode::payload), "payload");
}

// ---------------------------------------------------------------------------
// Randomized property: seeded random (kind, algorithm, shape, size, variant)
// draws must digest identically across the payload/time-only planes and the
// heap/calendar schedulers.

TEST(TimeOnlyProperty, RandomDrawsDigestIdentically) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::SplitMix64 rng(seed);
    const coll::CollKind kind = coll::kAllCollKinds[rng.next_below(
        std::size(coll::kAllCollKinds))];
    const auto algos = coll::CollRegistry::instance().names(kind);
    const std::string algo = algos[rng.next_below(algos.size())];
    const auto& d = coll::CollRegistry::instance().at(kind, algo);
    if (d.caps.needs_payload) continue;  // the synthetic test-only design
    const int nodes = static_cast<int>(2 + rng.next_below(4));
    int ppn = static_cast<int>(1 + rng.next_below(3));
    while (nodes * ppn < d.caps.min_comm_size) ++ppn;
    const std::size_t bytes = 4 * (1 + rng.next_below(4096));
    const Variant v = static_cast<Variant>(rng.next_below(3));

    coll::CollSpec spec;
    spec.algo = algo;
    spec.leaders = static_cast<int>(1 + rng.next_below(6));

    MeasureOptions payload = variant_opts(v);
    payload.with_data = true;
    payload.seed = seed;
    MeasureOptions timeonly = variant_opts(v);
    timeonly.data_mode = sim::DataMode::timeonly;
    timeonly.seed = seed;
    MeasureOptions timeonly_heap = timeonly;
    timeonly_heap.scheduler = sim::SchedulerKind::binary_heap;

    const auto cfg = net::test_cluster(nodes);
    const std::string what = "seed " + std::to_string(seed) + ": " +
                             std::string(variant_name(v)) + " " +
                             coll::coll_kind_name(kind) + "/" + algo + " " +
                             std::to_string(nodes) + "x" +
                             std::to_string(ppn) + " bytes=" +
                             std::to_string(bytes);
    const auto p = measure_collective(kind, cfg, nodes, ppn, bytes, spec,
                                      payload);
    const auto t = measure_collective(kind, cfg, nodes, ppn, bytes, spec,
                                      timeonly);
    const auto th = measure_collective(kind, cfg, nodes, ppn, bytes, spec,
                                       timeonly_heap);
    EXPECT_TRUE(p.verified) << what;
    EXPECT_TRUE(digest(p) == digest(t)) << what << " (payload vs time-only)";
    EXPECT_TRUE(digest(t) == digest(th)) << what << " (calendar vs heap)";
  }
}

// ---------------------------------------------------------------------------
// Time-only batches through the sweep executor: any jobs width produces the
// byte-identical digest vector (docs/MODEL.md §8 extends to the new plane).

TEST(TimeOnlyExecutor, ByteIdenticalAcrossJobCounts) {
  constexpr std::size_t kBatch = 16;
  const auto digest_all = [&](int jobs) {
    return Executor(jobs).map<Digest>(kBatch, [](std::size_t i) {
      const std::uint64_t seed = 500 + i;
      util::SplitMix64 rng(seed);
      const coll::CollKind kind = coll::kAllCollKinds[rng.next_below(
          std::size(coll::kAllCollKinds))];
      const auto algos = coll::CollRegistry::instance().names(kind);
      coll::CollSpec spec;
      spec.algo = algos[rng.next_below(algos.size())];
      const auto& d = coll::CollRegistry::instance().at(kind, spec.algo);
      const int nodes = static_cast<int>(2 + rng.next_below(3));
      int ppn = static_cast<int>(1 + rng.next_below(3));
      while (nodes * ppn < d.caps.min_comm_size) ++ppn;
      MeasureOptions opt;
      opt.iterations = 2;
      opt.warmup = 1;
      opt.seed = seed;
      if (!d.caps.needs_payload) opt.data_mode = sim::DataMode::timeonly;
      return digest(measure_collective(kind, net::test_cluster(nodes), nodes,
                                       ppn, 4 * (1 + rng.next_below(2048)),
                                       spec, opt));
    });
  };
  const std::vector<Digest> serial = digest_all(1);
  const std::vector<Digest> wide = digest_all(4);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < kBatch; ++i) {
    EXPECT_TRUE(serial[i] == wide[i])
        << "slot " << i << ": jobs=1 avg=" << serial[i].avg
        << " vs jobs=4 avg=" << wide[i].avg;
  }
}

}  // namespace
}  // namespace dpml::core
