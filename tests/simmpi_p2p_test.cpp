#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/cluster.hpp"
#include "simmpi/machine.hpp"
#include "util/error.hpp"

namespace dpml::simmpi {
namespace {

using sim::CoTask;
using sim::Time;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string string_of(const std::vector<std::byte>& v, std::size_t n) {
  std::string s(n, '\0');
  std::memcpy(s.data(), v.data(), n);
  return s;
}

CoTask<void> noop(Rank&) { co_return; }

// ---------------------------------------------------------------------------

TEST(Machine, ShapeAndMapping) {
  Machine m(net::test_cluster(4), 4, 4);
  EXPECT_EQ(m.world_size(), 16);
  EXPECT_EQ(m.num_nodes(), 4);
  EXPECT_EQ(m.ppn(), 4);
  EXPECT_EQ(m.rank(0).node_id(), 0);
  EXPECT_EQ(m.rank(5).node_id(), 1);
  EXPECT_EQ(m.rank(5).local_rank(), 1);
  // test_cluster nodes have 2 sockets, 2 cores each -> locals 0,1 on socket 0.
  EXPECT_EQ(m.rank(0).socket(), 0);
  EXPECT_EQ(m.rank(1).socket(), 0);
  EXPECT_EQ(m.rank(2).socket(), 1);
  EXPECT_EQ(m.rank(3).socket(), 1);
  EXPECT_EQ(m.world().size(), 16);
}

TEST(Machine, RejectsBadShapes) {
  EXPECT_THROW(Machine(net::test_cluster(2), 3, 2), util::InvariantError);
  EXPECT_THROW(Machine(net::test_cluster(2), 2, 100), util::InvariantError);
  EXPECT_THROW(Machine(net::test_cluster(2), 0, 1), util::InvariantError);
}

TEST(Machine, LeaderPlacementSpreadsAcrossNode) {
  Machine m(net::cluster_b(), 2, 28);
  EXPECT_EQ(m.leader_local_rank(0, 1), 0);
  EXPECT_EQ(m.leader_local_rank(0, 2), 0);
  EXPECT_EQ(m.leader_local_rank(1, 2), 14);  // second socket
  EXPECT_EQ(m.leader_local_rank(0, 4), 0);
  EXPECT_EQ(m.leader_local_rank(1, 4), 7);
  EXPECT_EQ(m.leader_local_rank(2, 4), 14);
  EXPECT_EQ(m.leader_local_rank(3, 4), 21);
  // Inverse mapping agrees.
  for (int l : {1, 2, 4, 8, 14}) {
    int found = 0;
    for (int lr = 0; lr < 28; ++lr) {
      const int j = m.leader_index_of_local(lr, l);
      if (j >= 0) {
        EXPECT_EQ(m.leader_local_rank(j, l), lr);
        ++found;
      }
    }
    EXPECT_EQ(found, l);
  }
}

TEST(Machine, LeaderCommMembersAndCaching) {
  Machine m(net::test_cluster(4), 4, 4);
  const Comm& c0 = m.leader_comm(0, 2);
  const Comm& c1 = m.leader_comm(1, 2);
  EXPECT_EQ(c0.size(), 4);
  EXPECT_EQ(c1.size(), 4);
  EXPECT_NE(c0.context(), c1.context());
  EXPECT_EQ(c0.world_rank(0), 0);
  EXPECT_EQ(c1.world_rank(0), 2);   // leader 1 of 2 on a 4-ppn node
  EXPECT_EQ(c1.world_rank(3), 14);
  EXPECT_EQ(&m.leader_comm(0, 2), &c0);  // cached
}

TEST(Machine, MakeCommAndRankLookup) {
  Machine m(net::test_cluster(2), 2, 2);
  const Comm& c = m.make_comm({3, 1});
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.world_rank(0), 3);
  EXPECT_EQ(c.rank_of_world(1), 1);
  EXPECT_EQ(c.rank_of_world(2), -1);
  EXPECT_FALSE(c.contains(0));
}

// ---------------------------------------------------------------------------
// Point-to-point

class P2P : public ::testing::Test {
 protected:
  // Two nodes, 2 ppn: ranks 0,1 on node 0; ranks 2,3 on node 1.
  Machine m{net::test_cluster(2), 2, 2};
};

TEST_F(P2P, EagerInterNodeDeliversPayload) {
  auto payload = bytes_of("hello");
  std::string got;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(m.world(), 2, 7, 5, payload);
    } else if (r.world_rank() == 2) {
      std::vector<std::byte> buf(16);
      auto res = co_await r.recv(m.world(), 0, 7, buf.size(), buf);
      EXPECT_EQ(res.bytes, 5u);
      EXPECT_EQ(res.src, 0);
      EXPECT_EQ(res.tag, 7);
      got = string_of(buf, 5);
    }
    co_return;
  });
  EXPECT_EQ(got, "hello");
  EXPECT_GT(m.now(), 0);
}

TEST_F(P2P, RendezvousDeliversPayload) {
  // test_cluster rendezvous threshold is 4KB; send 8KB.
  const std::size_t n = 8192;
  std::vector<std::byte> payload(n, std::byte{0xAB});
  bool ok = false;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 1) {
      co_await r.send(m.world(), 3, 1, n, payload);
    } else if (r.world_rank() == 3) {
      std::vector<std::byte> buf(n);
      auto res = co_await r.recv(m.world(), 1, 1, n, buf);
      EXPECT_EQ(res.bytes, n);
      ok = buf == payload;
    }
    co_return;
  });
  EXPECT_TRUE(ok);
}

TEST_F(P2P, RendezvousLateReceiverStillCompletes) {
  const std::size_t n = 8192;
  std::vector<std::byte> payload(n, std::byte{0x5C});
  bool ok = false;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(m.world(), 2, 9, n, payload);
    } else if (r.world_rank() == 2) {
      co_await r.compute(sim::ms(1.0));  // receiver arrives long after RTS
      std::vector<std::byte> buf(n);
      co_await r.recv(m.world(), 0, 9, n, buf);
      ok = buf == payload;
    }
    co_return;
  });
  EXPECT_TRUE(ok);
  EXPECT_GT(m.now(), sim::ms(1.0));
}

TEST_F(P2P, IntraNodeUsesSharedMemoryPath) {
  Time t_local = 0;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(m.world(), 1, 0, 64);
    } else if (r.world_rank() == 1) {
      co_await r.recv(m.world(), 0, 0, 64);
      t_local = r.engine().now();
    }
    co_return;
  });
  Machine m2(net::test_cluster(2), 2, 2);
  Time t_remote = 0;
  m2.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(m2.world(), 2, 0, 64);
    } else if (r.world_rank() == 2) {
      co_await r.recv(m2.world(), 0, 0, 64);
      t_remote = r.engine().now();
    }
    co_return;
  });
  EXPECT_GT(t_local, 0);
  EXPECT_GT(t_remote, t_local);  // network path costs more than shm
}

TEST_F(P2P, UnexpectedMessageIsBuffered) {
  bool ok = false;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(m.world(), 2, 5, 8);
    } else if (r.world_rank() == 2) {
      co_await r.compute(sim::us(100.0));  // recv posted after arrival
      auto res = co_await r.recv(m.world(), 0, 5, 8);
      ok = res.bytes == 8;
    }
    co_return;
  });
  EXPECT_TRUE(ok);
}

TEST_F(P2P, WildcardSourceAndTag) {
  int src_seen = -1;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 1) {
      co_await r.send(m.world(), 2, 42, 4);
    } else if (r.world_rank() == 2) {
      auto res = co_await r.recv(m.world(), kAnySource, kAnyTag, 4);
      src_seen = res.src;
      EXPECT_EQ(res.tag, 42);
    }
    co_return;
  });
  EXPECT_EQ(src_seen, 1);
}

TEST_F(P2P, TagSelectivity) {
  std::vector<int> order;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(m.world(), 2, /*tag=*/1, 4);
      co_await r.send(m.world(), 2, /*tag=*/2, 4);
    } else if (r.world_rank() == 2) {
      // Receive tag 2 first even though tag 1 arrived first.
      co_await r.recv(m.world(), 0, 2, 4);
      order.push_back(2);
      co_await r.recv(m.world(), 0, 1, 4);
      order.push_back(1);
    }
    co_return;
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST_F(P2P, FifoOrderPerPair) {
  std::vector<int> got;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        auto b = bytes_of(std::string(1, static_cast<char>('a' + i)));
        co_await r.send(m.world(), 2, 3, 1, b);
      }
    } else if (r.world_rank() == 2) {
      for (int i = 0; i < 5; ++i) {
        std::vector<std::byte> buf(1);
        co_await r.recv(m.world(), 0, 3, 1, buf);
        got.push_back(static_cast<int>(buf[0]) - 'a');
      }
    }
    co_return;
  });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(P2P, TruncationThrows) {
  EXPECT_THROW(
      m.run([&](Rank& r) -> CoTask<void> {
        if (r.world_rank() == 0) {
          co_await r.send(m.world(), 2, 0, 64);
        } else if (r.world_rank() == 2) {
          co_await r.recv(m.world(), 0, 0, 16);  // too small
        }
        co_return;
      }),
      util::MessageError);
}

TEST_F(P2P, MissingSenderDeadlocks) {
  EXPECT_THROW(m.run([&](Rank& r) -> CoTask<void> {
                 if (r.world_rank() == 2) {
                   co_await r.recv(m.world(), 0, 0, 4);
                 }
                 co_return;
               }),
               util::DeadlockError);
}

TEST_F(P2P, NonBlockingSendRecvOverlap) {
  bool ok = false;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      std::vector<std::shared_ptr<sim::Flag>> flags;
      flags.push_back(r.isend(m.world(), 2, 1, 32));
      flags.push_back(r.isend(m.world(), 2, 2, 32));
      co_await sim::wait_all(std::move(flags));
    } else if (r.world_rank() == 2) {
      auto h1 = r.irecv(m.world(), 0, 2, 32);
      auto h2 = r.irecv(m.world(), 0, 1, 32);
      co_await h1.done->wait();
      co_await h2.done->wait();
      ok = h1.result->tag == 2 && h2.result->tag == 1;
    }
    co_return;
  });
  EXPECT_TRUE(ok);
}

TEST_F(P2P, ContextIsolation) {
  // Same (src, dst, tag) on two communicators must not cross-match.
  const Comm& alt = m.make_comm({0, 2});
  std::vector<int> order;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      auto a = bytes_of("W");
      auto b = bytes_of("X");
      co_await r.send(m.world(), 2, 1, 1, a);
      co_await r.send(alt, 1, 1, 1, b);  // comm rank 1 == world rank 2
    } else if (r.world_rank() == 2) {
      std::vector<std::byte> buf(1);
      co_await r.recv(alt, 0, 1, 1, buf);
      order.push_back(static_cast<int>(buf[0]));
      co_await r.recv(m.world(), 0, 1, 1, buf);
      order.push_back(static_cast<int>(buf[0]));
    }
    co_return;
  });
  EXPECT_EQ(order, (std::vector<int>{'X', 'W'}));
}

TEST_F(P2P, SelfSendRejected) {
  EXPECT_THROW(m.run([&](Rank& r) -> CoTask<void> {
                 if (r.world_rank() == 0) {
                   co_await r.send(m.world(), 0, 0, 4);
                 }
                 co_return;
               }),
               util::InvariantError);
}

// ---------------------------------------------------------------------------
// Shared memory windows and collective slots

TEST_F(P2P, ShmWindowPutGetRoundTrip) {
  std::string got;
  m.run([&](Rank& r) -> CoTask<void> {
    if (r.node_id() != 0) co_return;
    auto key = r.next_coll_key(100);
    CollSlot& slot = r.node().slot(key);
    if (!slot.initialized) {
      slot.windows.emplace_back(64, /*owner_socket=*/0, m.with_data());
      slot.latches.emplace_back(r.engine(), 1);
      slot.initialized = true;
    }
    if (r.local_rank() == 0) {
      auto data = bytes_of("windowed");
      co_await r.shm_put(slot.windows[0], 8, data.size(), data);
      co_await r.signal(slot.latches[0]);
    } else {
      co_await slot.latches[0].wait();
      std::vector<std::byte> buf(8);
      co_await r.shm_get(slot.windows[0], 8, 8, buf);
      got = string_of(buf, 8);
    }
    r.node().release_slot(key, 2);
    co_return;
  });
  EXPECT_EQ(got, "windowed");
  EXPECT_EQ(m.node(0).live_slots(), 0u);
}

TEST_F(P2P, ShmWindowOutOfRangeThrows) {
  EXPECT_THROW(m.run([&](Rank& r) -> CoTask<void> {
                 if (r.world_rank() == 0) {
                   ShmWindow w(16, 0, m.with_data());
                   co_await r.shm_put(w, 12, 8, {});
                 }
                 co_return;
               }),
               util::InvariantError);
}

TEST_F(P2P, CollKeysAdvancePerContext) {
  Rank& r = m.rank(0);
  auto k1 = r.next_coll_key(5);
  auto k2 = r.next_coll_key(5);
  auto k3 = r.next_coll_key(6);
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_EQ(k2 - k1, 1);
}

TEST_F(P2P, MetadataOnlyRunMovesNoBytes) {
  RunOptions opt;
  opt.with_data = false;
  Machine md(net::test_cluster(2), 2, 2, opt);
  Time t_meta = 0;
  md.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(md.world(), 2, 0, 4096);
    } else if (r.world_rank() == 2) {
      auto res = co_await r.recv(md.world(), 0, 0, 4096);
      EXPECT_EQ(res.bytes, 4096u);
      t_meta = r.engine().now();
    }
    co_return;
  });
  // Same exchange with data: simulated time must be identical.
  Machine mdata(net::test_cluster(2), 2, 2);
  std::vector<std::byte> payload(4096, std::byte{1});
  Time t_data = 0;
  mdata.run([&](Rank& r) -> CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(mdata.world(), 2, 0, 4096, payload);
    } else if (r.world_rank() == 2) {
      std::vector<std::byte> buf(4096);
      co_await r.recv(mdata.world(), 0, 0, 4096, buf);
      t_data = r.engine().now();
    }
    co_return;
  });
  EXPECT_EQ(t_meta, t_data);
  EXPECT_GT(t_meta, 0);
}

// ---------------------------------------------------------------------------
// Transport timing properties

// Aggregate throughput of `pairs` concurrent streams relative to one stream,
// all senders on node 0, receivers on node 1.
double relative_throughput(const net::ClusterConfig& cfg, int pairs,
                           std::size_t bytes, int msgs_per_pair = 16) {
  auto run_once = [&](int np) -> double {
    Machine mm(cfg, 2, np);
    mm.run([&, np](Rank& r) -> CoTask<void> {
      if (r.node_id() == 0) {
        for (int i = 0; i < 16; ++i) {
          co_await r.send(mm.world(), np + r.local_rank(), i, bytes);
        }
      } else {
        for (int i = 0; i < 16; ++i) {
          co_await r.recv(mm.world(), r.local_rank(), i, bytes);
        }
      }
      co_return;
    });
    const double total_bytes =
        static_cast<double>(bytes) * msgs_per_pair * np;
    return total_bytes / sim::to_seconds(mm.now());
  };
  return run_once(pairs) / run_once(1);
}

TEST(Transport, IbConcurrencyScalesForLargeMessages) {
  auto cfg = net::cluster_b();
  const double rel = relative_throughput(cfg, 8, 64 * 1024);
  EXPECT_GT(rel, 3.5);  // paper Figure 1(b): close to #pairs
}

TEST(Transport, OpaLargeMessagesDoNotScale) {
  auto cfg = net::cluster_c();
  const double rel = relative_throughput(cfg, 8, 512 * 1024);
  EXPECT_LT(rel, 2.0);  // paper Figure 1(c) Zone C: ~1
}

TEST(Transport, OpaSmallMessagesScale) {
  auto cfg = net::cluster_c();
  const double rel = relative_throughput(cfg, 8, 64);
  EXPECT_GT(rel, 5.0);  // Zone A: near-linear with pairs
}

TEST(Transport, DeterministicAcrossRuns) {
  auto once = [] {
    Machine mm(net::test_cluster(4), 4, 4);
    mm.run([&](Rank& r) -> CoTask<void> {
      const int p = mm.world_size();
      // Everyone sends to (rank+5)%p and receives from (rank-5+p)%p.
      auto f = r.isend(mm.world(), (r.world_rank() + 5) % p, 0, 2048);
      co_await r.recv(mm.world(), (r.world_rank() + p - 5) % p, 0, 2048);
      co_await f->wait();
    });
    return mm.now();
  };
  EXPECT_EQ(once(), once());
}

TEST(Transport, NoopRun) {
  Machine mm(net::test_cluster(2), 1, 1);
  mm.run(noop);
  EXPECT_EQ(mm.now(), 0);
}

}  // namespace
}  // namespace dpml::simmpi
