// Empirical tuner (paper §6.4's per-size best-configuration search).
#include <gtest/gtest.h>

#include "core/tuner.hpp"
#include "net/cluster.hpp"

namespace dpml::core {
namespace {

TEST(Tuner, CandidatesMatchPaperSweep) {
  const auto c = default_candidates(28, false, 512 * 1024);
  // Leaders 1,2,4,8,16 plus pipelined variants of the larger counts.
  int plain = 0;
  int piped = 0;
  for (const auto& s : c) {
    EXPECT_EQ(s.algo, Algorithm::dpml);
    if (s.pipeline_k == 1) {
      ++plain;
    } else {
      ++piped;
    }
  }
  EXPECT_EQ(plain, 5);
  EXPECT_GT(piped, 0);
}

TEST(Tuner, CandidatesClampAndDeduplicate) {
  const auto c = default_candidates(4, false, 1024);
  int count = 0;
  for (const auto& s : c) {
    EXPECT_LE(s.leaders, 4);
    ++count;
  }
  EXPECT_EQ(count, 3);  // leaders 1, 2, 4
}

TEST(Tuner, IncludesSharpForSmallMessagesOnly) {
  const auto small = default_candidates(28, true, 256);
  bool has_sharp = false;
  for (const auto& s : small) has_sharp |= needs_fabric(s.algo);
  EXPECT_TRUE(has_sharp);

  const auto large = default_candidates(28, true, 1 << 20);
  for (const auto& s : large) EXPECT_FALSE(needs_fabric(s.algo));
}

TEST(Tuner, PicksManyLeadersForLargeMessages) {
  auto cfg = net::cluster_b();
  MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  const auto r = tune_allreduce(cfg, 8, 28, 512 * 1024, opt);
  EXPECT_EQ(r.best.spec.algo, Algorithm::dpml);
  EXPECT_GE(r.best.spec.leaders, 8);
  // Results are sorted fastest-first.
  for (std::size_t i = 1; i < r.all.size(); ++i) {
    EXPECT_LE(r.all[i - 1].avg_us, r.all[i].avg_us);
  }
}

TEST(Tuner, PicksFewLeadersForTinyMessages) {
  auto cfg = net::cluster_b();
  MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  const auto r = tune_allreduce(cfg, 8, 28, 16, opt);
  if (r.best.spec.algo == Algorithm::dpml) {
    EXPECT_LE(r.best.spec.leaders, 2);
  }
}

TEST(Tuner, PicksSharpForSmallMessagesOnClusterA) {
  auto cfg = net::cluster_a();
  MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  const auto r = tune_allreduce(cfg, 8, 28, 64, opt);
  EXPECT_TRUE(needs_fabric(r.best.spec.algo));
}

TEST(Tuner, SkipsSharpCandidatesOnFabriclessCluster) {
  auto cfg = net::cluster_c();
  MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  // Force SHArP candidates into the set; tuner must skip them.
  auto cands = default_candidates(28, true, 64);
  const auto r = tune_allreduce(cfg, 4, 28, 64, cands, opt);
  EXPECT_FALSE(needs_fabric(r.best.spec.algo));
}

TEST(Tuner, EmptyCandidateSetThrows) {
  auto cfg = net::cluster_b();
  EXPECT_THROW(tune_allreduce(cfg, 2, 2, 64, std::vector<AllreduceSpec>{}, {}),
               util::InvariantError);
}

}  // namespace
}  // namespace dpml::core
