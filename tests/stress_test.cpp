// Stress and scale tests: thousands of coroutines, deep completion chains
// (symmetric transfer must not grow the native stack), realistic figure
// shapes in metadata mode, and long iteration sequences (slot reuse).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace dpml {
namespace {

using sim::CoTask;
using sim::Engine;
using sim::Time;

CoTask<void> ping_worker(Engine& e, sim::Barrier& b, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await e.delay(sim::ns(100));
    co_await b.arrive_and_wait();
  }
}

TEST(Stress, FourThousandCoroutinesBarrierStorm) {
  Engine e;
  const int n = 4096;
  sim::Barrier b(e, n);
  for (int i = 0; i < n; ++i) e.spawn(ping_worker(e, b, 10));
  e.run();
  EXPECT_EQ(e.live_tasks(), 0);
  EXPECT_EQ(b.generation(), 10u);
}

CoTask<void> deep_chain(Engine& e, int depth) {
  if (depth == 0) {
    co_await e.delay(1);
    co_return;
  }
  co_await deep_chain(e, depth - 1);
}

TEST(Stress, DeepCoroutineChainDoesNotOverflowStack) {
  // 50k-deep nested co_await: completion unwinds through symmetric
  // transfer, not native-stack recursion.
  Engine e;
  e.spawn(deep_chain(e, 50000));
  e.run();
  EXPECT_EQ(e.live_tasks(), 0);
}

CoTask<void> sem_hammer(Engine& e, sim::Semaphore& s, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await s.acquire();
    co_await e.delay(sim::ns(10));
    s.release();
  }
}

TEST(Stress, SemaphoreManyWaiters) {
  Engine e;
  sim::Semaphore s(e, 3);
  for (int i = 0; i < 500; ++i) e.spawn(sem_hammer(e, s, 20));
  e.run();
  EXPECT_EQ(s.available(), 3);
  EXPECT_EQ(s.waiting(), 0);
}

TEST(Stress, ManyIterationsReuseSlotsWithoutLeaks) {
  // 200 back-to-back hierarchical collectives: per-invocation slots must be
  // created and torn down each time.
  simmpi::RunOptions opt;
  opt.with_data = false;
  simmpi::Machine m(net::test_cluster(2), 2, 4, opt);
  m.run([&](simmpi::Rank& r) -> CoTask<void> {
    for (int i = 0; i < 200; ++i) {
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 256;
      a.inplace = true;
      core::AllreduceSpec spec;
      spec.algo = core::Algorithm::dpml;
      spec.leaders = 2;
      co_await core::run_allreduce(a, spec);
    }
  });
  EXPECT_EQ(m.node(0).live_slots(), 0u);
  EXPECT_EQ(m.node(1).live_slots(), 0u);
}

// ---------------------------------------------------------------------------
// Figure-shape smoke tests (metadata mode, realistic scales).

TEST(ScaleSmoke, Fig5ShapeRuns) {
  // 1792 ranks (64x28), one large DPML allreduce.
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::dpml;
  spec.leaders = 16;
  core::MeasureOptions opt;
  opt.iterations = 1;
  opt.warmup = 0;
  const auto r =
      core::measure_allreduce(net::cluster_b(), 64, 28, 512 * 1024, spec, opt);
  EXPECT_GT(r.avg_us, 100.0);
  EXPECT_LT(r.avg_us, 10000.0);
}

TEST(ScaleSmoke, Fig10ShapeRuns) {
  // 10,240 ranks (160x64) — the paper's largest experiment.
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::dpml_auto;
  core::MeasureOptions opt;
  opt.iterations = 1;
  opt.warmup = 0;
  const auto r =
      core::measure_allreduce(net::cluster_d(), 160, 64, 16 * 1024, spec, opt);
  EXPECT_GT(r.avg_us, 10.0);
  EXPECT_LT(r.avg_us, 5000.0);
  EXPECT_GT(r.events, 100000u);  // genuinely simulated at scale
}

TEST(ScaleSmoke, FullClusterBWidth) {
  // All 648 nodes of cluster B at ppn=1 with a flat algorithm.
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::recursive_doubling;
  core::MeasureOptions opt;
  opt.iterations = 1;
  opt.warmup = 0;
  const auto r = core::measure_allreduce(net::cluster_b(), 648, 1, 4096, spec,
                                         opt);
  EXPECT_GT(r.avg_us, 0.0);
}

TEST(ScaleSmoke, DeterministicAtScale) {
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::mvapich2;
  core::MeasureOptions opt;
  opt.iterations = 1;
  opt.warmup = 0;
  const auto a =
      core::measure_allreduce(net::cluster_d(), 64, 64, 65536, spec, opt);
  const auto b =
      core::measure_allreduce(net::cluster_d(), 64, 64, 65536, spec, opt);
  EXPECT_EQ(a.avg_us, b.avg_us);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace dpml
