// Alltoall (Bruck + pairwise), v-variant collectives, SHArP barrier/bcast,
// and the stencil kernel.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/stencil.hpp"
#include "coll/alltoall.hpp"
#include "coll/sharp_extra.hpp"
#include "net/cluster.hpp"

namespace dpml::coll {
namespace {

using simmpi::Machine;
using simmpi::Rank;

std::vector<std::byte> block_pattern(int from, int to, std::size_t bytes) {
  std::vector<std::byte> v(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    v[i] = static_cast<std::byte>((from * 37 + to * 11 + i) & 0xff);
  }
  return v;
}

void run_alltoall_case(AlltoallAlgo algo, int nodes, int ppn,
                       std::size_t block) {
  Machine m(net::test_cluster(nodes), nodes, ppn);
  const int p = m.world_size();
  std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(p));
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) {
    in[w].resize(static_cast<std::size_t>(p) * block);
    out[w].resize(static_cast<std::size_t>(p) * block);
    for (int to = 0; to < p; ++to) {
      const auto b = block_pattern(w, to, block);
      std::memcpy(in[w].data() + static_cast<std::size_t>(to) * block,
                  b.data(), block);
    }
  }
  m.run([&](Rank& r) -> sim::CoTask<void> {
    AlltoallArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.block_bytes = block;
    a.send = simmpi::ConstBytes{in[static_cast<std::size_t>(r.world_rank())]};
    a.recv = simmpi::MutBytes{out[static_cast<std::size_t>(r.world_rank())]};
    co_await alltoall(a, algo);
  });
  for (int w = 0; w < p; ++w) {
    for (int from = 0; from < p; ++from) {
      const auto expect = block_pattern(from, w, block);
      ASSERT_EQ(0, std::memcmp(out[w].data() +
                                   static_cast<std::size_t>(from) * block,
                               expect.data(), block))
          << "algo=" << static_cast<int>(algo) << " " << nodes << "x" << ppn
          << " dst=" << w << " src=" << from;
    }
  }
}

TEST(Alltoall, PairwiseExactOnVariousShapes) {
  run_alltoall_case(AlltoallAlgo::pairwise, 2, 2, 16);
  run_alltoall_case(AlltoallAlgo::pairwise, 3, 2, 9);
  run_alltoall_case(AlltoallAlgo::pairwise, 4, 4, 32);
  run_alltoall_case(AlltoallAlgo::pairwise, 5, 1, 8);
}

TEST(Alltoall, BruckExactOnVariousShapes) {
  run_alltoall_case(AlltoallAlgo::bruck, 2, 2, 16);
  run_alltoall_case(AlltoallAlgo::bruck, 3, 2, 9);
  run_alltoall_case(AlltoallAlgo::bruck, 4, 4, 32);
  run_alltoall_case(AlltoallAlgo::bruck, 5, 1, 8);
  run_alltoall_case(AlltoallAlgo::bruck, 7, 1, 4);  // non-power-of-two
}

TEST(Alltoall, AutomaticPicksBySize) {
  run_alltoall_case(AlltoallAlgo::automatic, 4, 2, 8);      // bruck range
  run_alltoall_case(AlltoallAlgo::automatic, 4, 2, 4096);   // pairwise range
}

TEST(Alltoall, BruckBeatsPairwiseLatencyForTinyBlocks) {
  auto run = [](AlltoallAlgo algo) {
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(net::cluster_b(), 16, 1, opt);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      AlltoallArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.block_bytes = 8;
      co_await alltoall(a, algo);
    });
    return m.now();
  };
  // lg(p) rounds vs p-1 rounds.
  EXPECT_LT(run(AlltoallAlgo::bruck), run(AlltoallAlgo::pairwise));
}

// ---------------------------------------------------------------------------
// v-variants

TEST(Vcoll, GathervIrregularBlocks) {
  Machine m(net::test_cluster(2), 2, 2);
  const int p = m.world_size();
  std::vector<std::size_t> sizes{5, 0, 17, 3};
  std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) in[w] = block_pattern(w, 0, sizes[w]);
  std::vector<std::byte> out(25);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    GathervArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.root = 2;
    a.block_bytes = sizes;
    a.send = simmpi::ConstBytes{in[static_cast<std::size_t>(r.world_rank())]};
    if (r.world_rank() == 2) a.recv = simmpi::MutBytes{out};
    co_await gatherv(a);
  });
  std::size_t off = 0;
  for (int w = 0; w < p; ++w) {
    EXPECT_EQ(0, std::memcmp(out.data() + off, in[w].data(), sizes[w]));
    off += sizes[w];
  }
}

TEST(Vcoll, ScattervIrregularBlocks) {
  Machine m(net::test_cluster(2), 2, 2);
  const int p = m.world_size();
  std::vector<std::size_t> sizes{8, 24, 0, 4};
  std::vector<std::byte> all(36);
  std::size_t off = 0;
  for (int w = 0; w < p; ++w) {
    const auto b = block_pattern(0, w, sizes[w]);
    std::memcpy(all.data() + off, b.data(), sizes[w]);
    off += sizes[w];
  }
  std::vector<std::vector<std::byte>> outs(static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) outs[w].resize(sizes[w]);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    ScattervArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.root = 0;
    a.block_bytes = sizes;
    if (r.world_rank() == 0) a.send = simmpi::ConstBytes{all};
    a.recv = simmpi::MutBytes{outs[static_cast<std::size_t>(r.world_rank())]};
    co_await scatterv(a);
  });
  for (int w = 0; w < p; ++w) {
    EXPECT_EQ(outs[w], block_pattern(0, w, sizes[w])) << "rank " << w;
  }
}

TEST(Vcoll, AllgathervRingIrregularBlocks) {
  Machine m(net::test_cluster(3), 3, 2);
  const int p = m.world_size();
  std::vector<std::size_t> sizes{1, 9, 0, 13, 5, 2};
  std::size_t total = 0;
  for (auto s : sizes) total += s;
  std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(p));
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  for (int w = 0; w < p; ++w) {
    in[w] = block_pattern(w, 9, sizes[w]);
    out[w].resize(total);
  }
  m.run([&](Rank& r) -> sim::CoTask<void> {
    AllgathervArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.block_bytes = sizes;
    a.send = simmpi::ConstBytes{in[static_cast<std::size_t>(r.world_rank())]};
    a.recv = simmpi::MutBytes{out[static_cast<std::size_t>(r.world_rank())]};
    co_await allgatherv_ring(a);
  });
  for (int w = 0; w < p; ++w) {
    std::size_t off = 0;
    for (int b = 0; b < p; ++b) {
      EXPECT_EQ(0, std::memcmp(out[w].data() + off, in[b].data(), sizes[b]))
          << "rank " << w << " block " << b;
      off += sizes[b];
    }
  }
}

TEST(Vcoll, SizeVectorLengthChecked) {
  Machine m(net::test_cluster(2), 2, 1);
  EXPECT_THROW(m.run([&](Rank& r) -> sim::CoTask<void> {
                 GathervArgs a;
                 a.rank = &r;
                 a.comm = &m.world();
                 a.block_bytes = {4};  // world has 2 ranks
                 co_await gatherv(a);
               }),
               util::InvariantError);
}

// ---------------------------------------------------------------------------
// SHArP barrier and bcast

TEST(SharpExtra, BarrierReleasesAfterLastArrival) {
  Machine m(net::test_cluster(4), 4, 4, simmpi::RunOptions{false, 1});
  sharp::SharpFabric f(m);
  std::vector<sim::Time> exits(static_cast<std::size_t>(m.world_size()));
  const sim::Time skew = sim::us(40.0);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    co_await r.compute(skew * r.world_rank());
    BarrierArgs a;
    a.rank = &r;
    a.comm = &m.world();
    co_await barrier_sharp(a, f);
    exits[static_cast<std::size_t>(r.world_rank())] = r.engine().now();
  });
  const sim::Time last = skew * (m.world_size() - 1);
  for (auto t : exits) EXPECT_GE(t, last);
}

TEST(SharpExtra, BarrierFasterThanDisseminationAtScale) {
  auto run = [](bool use_sharp) {
    auto cfg = net::cluster_a();
    Machine m(cfg, 16, 28, simmpi::RunOptions{false, 1});
    sharp::SharpFabric f(m);
    m.run([&, use_sharp](Rank& r) -> sim::CoTask<void> {
      BarrierArgs a;
      a.rank = &r;
      a.comm = &m.world();
      if (use_sharp) {
        co_await barrier_sharp(a, f);
      } else {
        co_await barrier(a, BarrierAlgo::single_leader);
      }
    });
    return m.now();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(SharpExtra, BcastDeliversPayload) {
  for (int root : {0, 5}) {
    Machine m(net::test_cluster(4), 4, 2);
    sharp::SharpFabric f(m);
    const std::size_t bytes = 777;
    const auto payload = block_pattern(root, 42, bytes);
    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(m.world_size()));
    for (int w = 0; w < m.world_size(); ++w) {
      bufs[w].resize(bytes);
      if (w == root) bufs[w] = payload;
    }
    m.run([&](Rank& r) -> sim::CoTask<void> {
      BcastArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.root = root;
      a.bytes = bytes;
      a.buf = simmpi::MutBytes{bufs[static_cast<std::size_t>(r.world_rank())]};
      co_await bcast_sharp(a, f);
    });
    for (int w = 0; w < m.world_size(); ++w) {
      EXPECT_EQ(bufs[w], payload) << "root " << root << " rank " << w;
    }
  }
}

TEST(SharpExtra, BcastOversizeFallsBackToHost) {
  auto cfg = net::test_cluster(2);
  cfg.sharp->max_payload = 64;
  Machine m(cfg, 2, 2);
  sharp::SharpFabric f(m);
  const std::size_t bytes = 4096;
  const auto payload = block_pattern(1, 2, bytes);
  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(m.world_size()));
  for (int w = 0; w < m.world_size(); ++w) {
    bufs[w].resize(bytes);
    if (w == 0) bufs[w] = payload;
  }
  m.run([&](Rank& r) -> sim::CoTask<void> {
    BcastArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.bytes = bytes;
    a.buf = simmpi::MutBytes{bufs[static_cast<std::size_t>(r.world_rank())]};
    co_await bcast_sharp(a, f);
  });
  for (int w = 0; w < m.world_size(); ++w) EXPECT_EQ(bufs[w], payload);
}

// ---------------------------------------------------------------------------
// Stencil kernel

TEST(Stencil, ProcessGridFactorsCorrectly) {
  for (int p : {1, 2, 4, 8, 12, 28, 64, 100, 97}) {
    const auto g = apps::process_grid(p);
    EXPECT_EQ(g[0] * g[1] * g[2], p) << "p=" << p;
  }
  // Near-cubic for cubes.
  const auto g64 = apps::process_grid(64);
  EXPECT_EQ(g64[0], 4);
  EXPECT_EQ(g64[1], 4);
  EXPECT_EQ(g64[2], 4);
}

TEST(Stencil, RunsAndCountsResidualChecks) {
  auto cfg = net::cluster_b();
  apps::StencilOptions o;
  o.nodes = 2;
  o.ppn = 4;
  o.sweeps = 8;
  o.check_every = 4;
  o.spec.algo = core::Algorithm::mvapich2;
  const auto r = apps::run_stencil(cfg, o);
  EXPECT_EQ(r.residual_checks, 2);
  EXPECT_GT(r.total_s, 0.0);
  EXPECT_GT(r.halo_s, 0.0);
  EXPECT_GT(r.allreduce_s, 0.0);
  EXPECT_LT(r.halo_s + r.allreduce_s, r.total_s);
}

TEST(Stencil, SharpSpeedsUpResidualPhase) {
  auto cfg = net::cluster_a();
  apps::StencilOptions host;
  host.nodes = 8;
  host.ppn = 28;
  host.sweeps = 8;
  host.check_every = 1;  // allreduce-heavy
  host.spec.algo = core::Algorithm::mvapich2;
  apps::StencilOptions sharp_opt = host;
  sharp_opt.spec.algo = core::Algorithm::sharp_socket_leader;
  const auto a = apps::run_stencil(cfg, host);
  const auto b = apps::run_stencil(cfg, sharp_opt);
  EXPECT_LT(b.allreduce_s, a.allreduce_s);
}

TEST(Stencil, Deterministic) {
  auto cfg = net::cluster_c();
  apps::StencilOptions o;
  o.nodes = 3;
  o.ppn = 4;
  o.sweeps = 5;
  o.spec.algo = core::Algorithm::dpml;
  EXPECT_EQ(apps::run_stencil(cfg, o).total_s,
            apps::run_stencil(cfg, o).total_s);
}

}  // namespace
}  // namespace dpml::coll
