#include <gtest/gtest.h>

#include <sstream>

#include "core/api.hpp"
#include "net/cluster.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/trace.hpp"

namespace dpml::simmpi {
namespace {

void run_one_allreduce(Machine& m) {
  m.run([&](Rank& r) -> sim::CoTask<void> {
    core::AllreduceSpec spec;
    spec.algo = core::Algorithm::dpml;
    spec.leaders = 2;
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = 1024;
    a.inplace = true;
    co_await core::run_allreduce(a, spec);
  });
}

TEST(Trace, DisabledByDefault) {
  RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(2), 2, 2, opt);
  EXPECT_FALSE(m.tracing());
  run_one_allreduce(m);  // must not crash without a tracer
}

TEST(Trace, RecordsPhaseSpans) {
  RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(2), 2, 4, opt);
  m.enable_trace();
  run_one_allreduce(m);
  ASSERT_TRUE(m.tracing());
  const auto& spans = m.tracer().spans();
  ASSERT_FALSE(spans.empty());
  bool saw_put = false;
  bool saw_get = false;
  bool saw_net = false;
  bool saw_reduce = false;
  for (const auto& s : spans) {
    EXPECT_GE(s.end, s.start);
    EXPECT_GE(s.rank, 0);
    EXPECT_LT(s.rank, m.world_size());
    saw_put |= s.name == "shm-put";
    saw_get |= s.name == "shm-get";
    saw_net |= s.name == "net-send";
    saw_reduce |= s.name == "reduce";
  }
  EXPECT_TRUE(saw_put);     // phase 1
  EXPECT_TRUE(saw_reduce);  // phase 2
  EXPECT_TRUE(saw_net);     // phase 3
  EXPECT_TRUE(saw_get);     // phase 4
}

TEST(Trace, ChromeJsonIsWellFormedish) {
  Tracer t;
  t.add("a \"quoted\" name", "cat\\egory", 3, sim::us(1.0), sim::us(2.5));
  t.add("b", "net", 0, 0, 0);
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.5"), std::string::npos);
  // Balanced braces/brackets at the ends.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');
}

TEST(Trace, ChromeJsonEmitsLaneMetadata) {
  RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(2), 2, 2, opt);
  m.enable_trace();
  run_one_allreduce(m);
  EXPECT_EQ(m.tracer().thread_names().size(), 4u);
  EXPECT_EQ(m.tracer().thread_names().at(3), "rank 3 (node 1)");
  std::ostringstream os;
  m.tracer().write_chrome_json(os);
  const std::string json = os.str();
  // Perfetto lane labels: one process_name plus a thread_name per rank,
  // emitted as 'M' metadata events ahead of the spans.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 0 (node 0)\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 3 (node 1)\""), std::string::npos);
  EXPECT_EQ(json[json.size() - 2], '}');
}

TEST(Trace, ClampsBackwardSpansAndClears) {
  Tracer t;
  t.add("x", "c", 0, sim::us(5.0), sim::us(1.0));  // end < start -> clamped
  EXPECT_EQ(t.spans()[0].end, t.spans()[0].start);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, TracingDoesNotChangeSimulatedTime) {
  RunOptions opt;
  opt.with_data = false;
  Machine a(net::test_cluster(2), 2, 4, opt);
  run_one_allreduce(a);
  Machine b(net::test_cluster(2), 2, 4, opt);
  b.enable_trace();
  run_one_allreduce(b);
  EXPECT_EQ(a.now(), b.now());
}

}  // namespace
}  // namespace dpml::simmpi
