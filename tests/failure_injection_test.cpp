// Failure injection: every error path must surface as a typed exception (or
// a detected deadlock), never a hang or silent corruption.
#include <gtest/gtest.h>

#include "coll/dpml.hpp"
#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "sharp/sharp.hpp"
#include "simmpi/machine.hpp"

namespace dpml {
namespace {

using simmpi::Machine;
using simmpi::Rank;
using sim::CoTask;

TEST(FailureInjection, TagMismatchIsDetectedAsDeadlock) {
  Machine m(net::test_cluster(2), 2, 1, simmpi::RunOptions{false, 1});
  EXPECT_THROW(m.run([&](Rank& r) -> CoTask<void> {
                 if (r.world_rank() == 0) {
                   co_await r.send(m.world(), 1, /*tag=*/1, 64);
                   co_await r.recv(m.world(), 1, /*tag=*/2, 64);
                 } else {
                   co_await r.recv(m.world(), 0, /*tag=*/3, 64);  // never sent
                 }
               }),
               util::DeadlockError);
}

TEST(FailureInjection, MismatchedCollectiveSequenceDeadlocks) {
  // One rank runs a different collective count: detected, not hung.
  Machine m(net::test_cluster(2), 2, 1, simmpi::RunOptions{false, 1});
  EXPECT_THROW(m.run([&](Rank& r) -> CoTask<void> {
                 coll::CollArgs a;
                 a.rank = &r;
                 a.comm = &m.world();
                 a.count = 64;
                 a.inplace = true;
                 const int rounds = r.world_rank() == 0 ? 2 : 1;
                 for (int i = 0; i < rounds; ++i) {
                   co_await coll::allreduce_recursive_doubling(a);
                 }
               }),
               util::DeadlockError);
}

TEST(FailureInjection, TruncationInsideUserCodeThrows) {
  Machine m(net::test_cluster(2), 2, 1);
  EXPECT_THROW(m.run([&](Rank& r) -> CoTask<void> {
                 if (r.world_rank() == 0) {
                   std::vector<std::byte> big(256, std::byte{1});
                   co_await r.send(m.world(), 1, 0, big.size(),
                                   simmpi::ConstBytes{big});
                 } else {
                   std::vector<std::byte> small(16);
                   co_await r.recv(m.world(), 0, 0, small.size(),
                                   simmpi::MutBytes{small});
                 }
               }),
               util::MessageError);
}

TEST(FailureInjection, SharpGroupExhaustionSurfaces) {
  Machine m(net::test_cluster(4), 4, 2, simmpi::RunOptions{false, 1});
  sharp::SharpFabric f(m);  // test cluster: max_groups = 4
  f.create_group({0, 2});
  f.create_group({0, 4});
  f.create_group({0, 6});
  f.create_group({2, 4});
  EXPECT_THROW(f.named_group("one_too_many", {4, 6}), sharp::SharpError);
}

TEST(FailureInjection, CountMismatchAcrossRanksDetected) {
  // Ranks disagree on the vector size: the smaller receiver truncates.
  Machine m(net::test_cluster(2), 2, 1, simmpi::RunOptions{false, 1});
  EXPECT_THROW(m.run([&](Rank& r) -> CoTask<void> {
                 coll::CollArgs a;
                 a.rank = &r;
                 a.comm = &m.world();
                 a.count = r.world_rank() == 0 ? 128u : 64u;
                 a.inplace = true;
                 co_await coll::allreduce_recursive_doubling(a);
               }),
               util::MessageError);
}

TEST(FailureInjection, BadLeaderArgumentsThrow) {
  Machine m(net::test_cluster(2), 2, 2, simmpi::RunOptions{false, 1});
  EXPECT_THROW((void)m.leader_local_rank(0, 0), util::InvariantError);
  EXPECT_THROW((void)m.leader_local_rank(2, 2), util::InvariantError);
  EXPECT_THROW((void)m.leader_comm(5, 2), util::InvariantError);
}

TEST(FailureInjection, MakeCommRejectsBadRanks) {
  Machine m(net::test_cluster(2), 2, 2);
  EXPECT_THROW(m.make_comm({0, 99}), util::InvariantError);
  EXPECT_THROW(m.make_comm({-1}), util::InvariantError);
}

TEST(FailureInjection, MeasureRejectsBadIterationCounts) {
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::recursive_doubling;
  core::MeasureOptions opt;
  opt.iterations = 0;
  EXPECT_THROW(
      core::measure_allreduce(net::test_cluster(2), 2, 2, 64, spec, opt),
      util::InvariantError);
}

TEST(FailureInjection, ExceptionInOneRankAbortsRunCleanly) {
  Machine m(net::test_cluster(2), 2, 2, simmpi::RunOptions{false, 1});
  EXPECT_THROW(m.run([&](Rank& r) -> CoTask<void> {
                 co_await r.compute(sim::us(1.0));
                 if (r.world_rank() == 3) {
                   throw std::runtime_error("injected fault");
                 }
                 co_await r.compute(sim::us(1.0));
               }),
               std::runtime_error);
}

TEST(FailureInjection, OverlargeShmOffsetRejected) {
  Machine m(net::test_cluster(2), 2, 2, simmpi::RunOptions{false, 1});
  EXPECT_THROW(m.run([&](Rank& r) -> CoTask<void> {
                 if (r.world_rank() != 0) co_return;
                 simmpi::ShmWindow w(128, 0, false);
                 co_await r.shm_put(w, 100, 64);
               }),
               util::InvariantError);
}

}  // namespace
}  // namespace dpml
