// Multi-tenant fabric subsystem (src/tenant, docs/MODEL.md §11):
// hand-computed max-min arbitration between two jobs' flows, per-group byte
// attribution, ECMP-way failure/recovery with deterministic rerouting of
// live flows, bit-identical tenant runs across reruns and --jobs widths,
// spec-string parsing, shape validation, and — the tenancy-off contract —
// golden single-job --fabric latencies that must not move when the tenant
// subsystem is compiled in.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/measure.hpp"
#include "fabric/fabric.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"
#include "tenant/tenant.hpp"
#include "util/error.hpp"

namespace dpml {
namespace {

using fabric::FlowFabric;

// ---------------------------------------------------------------------------
// Two competing jobs on one leaf link: max-min shares and byte attribution.

TEST(TenantFabricTest, TwoJobsSplitASharedEdgeLinkAndBytesAttribute) {
  sim::Engine eng;
  const auto cfg = net::test_cluster(4);  // one leaf, 12 GB/s edges
  FlowFabric ff(eng, cfg, 4);
  ff.enable_group_accounting(3);
  ff.set_node_group(0, 1);  // job A owns node 0
  ff.set_node_group(2, 2);  // job B owns node 2
  const std::uint64_t bytes = 1 << 20;
  double rate_a = 0.0;
  double rate_b = 0.0;
  eng.schedule_call(0, [&]() {
    // Both jobs target node 1: node1.down is the bottleneck, max-min splits
    // it 6/6 GB/s.
    const auto a = ff.start_flow(0, 1, bytes, cfg.nic.link_bw, nullptr);
    const auto b = ff.start_flow(2, 1, bytes, cfg.nic.link_bw, nullptr);
    rate_a = ff.flow_rate_gbps(a);
    rate_b = ff.flow_rate_gbps(b);
  });
  eng.run();
  EXPECT_NEAR(rate_a, 6.0, 1e-6);
  EXPECT_NEAR(rate_b, 6.0, 1e-6);
  // Full drain: every flow's bytes land on its links under its own group
  // (kAutoGroup resolves through set_node_group on the source).
  const int shared = ff.downlink(1);
  EXPECT_NEAR(ff.link_group_bytes(shared, 1), static_cast<double>(bytes),
              1e-3);
  EXPECT_NEAR(ff.link_group_bytes(shared, 2), static_cast<double>(bytes),
              1e-3);
  EXPECT_NEAR(ff.link_group_bytes(ff.uplink(0), 1),
              static_cast<double>(bytes), 1e-3);
  EXPECT_NEAR(ff.link_group_bytes(ff.uplink(0), 2), 0.0, 1e-9);
  EXPECT_NEAR(ff.link_group_bytes(ff.uplink(2), 2),
              static_cast<double>(bytes), 1e-3);
}

// ---------------------------------------------------------------------------
// Failure and recovery: way probing, live-flow rerouting, determinism.

TEST(TenantFabricTest, ChooseWayProbesPastDownWaysAndRecovers) {
  sim::Engine eng;
  const auto cfg = net::test_cluster(8);  // 2 leaves x 4 nodes, 4 ways
  FlowFabric ff(eng, cfg, 8);
  ASSERT_EQ(ff.topo().ecmp_ways, 4);
  const int w0 = ff.choose_way(0, 4);
  EXPECT_EQ(w0, FlowFabric::ecmp_way(0, 4, 4));  // all ways live: pure hash
  ff.set_way_down(FlowFabric::kAllLeaves, w0, true);
  EXPECT_TRUE(ff.way_down(0, w0));
  EXPECT_TRUE(ff.way_down(1, w0));
  // Linear probe from the hash: the next live way in cyclic order.
  EXPECT_EQ(ff.choose_way(0, 4), (w0 + 1) % 4);
  ff.set_way_down(FlowFabric::kAllLeaves, w0, false);
  EXPECT_FALSE(ff.way_down(0, w0));
  EXPECT_EQ(ff.choose_way(0, 4), w0);
}

TEST(TenantFabricTest, LiveFlowsRerouteOffAFailedWayDeterministically) {
  // Run the identical failure-at-instant scenario twice: a cross-leaf flow
  // loses its way mid-flight, reroutes, and must finish at the exact same
  // tick both times.
  auto run_once = [&]() {
    sim::Engine eng;
    const auto cfg = net::test_cluster(8);
    FlowFabric ff(eng, cfg, 8);
    sim::Time finish = 0;
    eng.schedule_call(0, [&]() {
      ff.start_flow(0, 4, 1 << 22, cfg.nic.link_bw,
                    [&](sim::Time t) { finish = t; });
    });
    const int w0 = ff.choose_way(0, 4);
    eng.schedule_call(sim::us(100), [&, w0]() {
      ff.set_way_down(FlowFabric::kAllLeaves, w0, true);
      EXPECT_EQ(ff.active_flows(), 1);  // still in flight, on a new way
    });
    eng.run();
    return finish;
  };
  const sim::Time first = run_once();
  const sim::Time second = run_once();
  EXPECT_GT(first, 0);
  EXPECT_EQ(first, second);
}

TEST(TenantFabricTest, NoLiveWayIsAnInvariantViolation) {
  sim::Engine eng;
  const auto cfg = net::test_cluster(8);
  FlowFabric ff(eng, cfg, 8);
  for (int w = 0; w < 4; ++w) {
    ff.set_way_down(FlowFabric::kAllLeaves, w, true);
  }
  EXPECT_THROW((void)ff.choose_way(0, 4), util::InvariantError);
}

// ---------------------------------------------------------------------------
// Whole tenant runs: determinism across reruns and executor widths.

void expect_same(const tenant::TenantResult& a, const tenant::TenantResult& b) {
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.max_link_util, b.max_link_util);
  EXPECT_EQ(a.flows, b.flows);
  EXPECT_EQ(a.bg_flows, b.bg_flows);
  EXPECT_EQ(a.hot_link, b.hot_link);
  EXPECT_DOUBLE_EQ(a.hot_link_bg_share, b.hot_link_bg_share);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].start_us, b.jobs[i].start_us) << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].makespan_us, b.jobs[i].makespan_us) << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].goodput_gbps, b.jobs[i].goodput_gbps) << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].solo_us, b.jobs[i].solo_us) << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].slowdown, b.jobs[i].slowdown) << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].stall_us, b.jobs[i].stall_us) << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].link_share, b.jobs[i].link_share) << i;
  }
}

tenant::TenantOptions busy_options() {
  tenant::TenantOptions opt;
  opt.seed = 7;
  opt.traffic = tenant::TrafficSpec::parse("uniform:load=0.4,seed=3");
  opt.failures = tenant::FailSpec::default_spec();
  return opt;
}

TEST(TenantRunTest, FailureAndTrafficRunsAreBitIdenticalAcrossReruns) {
  const auto cfg = net::test_cluster(8);
  const auto jobs = tenant::default_jobs(3, cfg, 8);
  tenant::TenantOptions opt = busy_options();
  const tenant::TenantResult a = tenant::run_tenants(cfg, 2, jobs, opt);
  const tenant::TenantResult b = tenant::run_tenants(cfg, 2, jobs, opt);
  expect_same(a, b);
  EXPECT_GT(a.bg_flows, 0u);
  EXPECT_GT(a.makespan_us, 0.0);
}

TEST(TenantRunTest, ResultsAreBitIdenticalAcrossJobsWidths) {
  const auto cfg = net::test_cluster(8);
  const auto jobs = tenant::default_jobs(3, cfg, 8);
  tenant::TenantOptions opt = busy_options();
  opt.jobs = 1;
  const tenant::TenantResult serial = tenant::run_tenants(cfg, 2, jobs, opt);
  opt.jobs = 4;
  const tenant::TenantResult wide = tenant::run_tenants(cfg, 2, jobs, opt);
  expect_same(serial, wide);
}

TEST(TenantRunTest, SingleQuietJobMatchesItsSoloBaselineExactly) {
  // One job, no background, no failures: the shared run IS the solo run
  // (the stagger shifts the whole timeline, not the makespan), so the
  // slowdown must be exactly 1.
  const auto cfg = net::test_cluster(8);
  tenant::JobSpec j;
  j.name = "only";
  j.kind = coll::CollKind::allreduce;
  j.algo = "ring";
  j.nodes = 4;
  j.bytes = 65536;
  j.iterations = 3;
  const tenant::TenantResult r = tenant::run_tenants(cfg, 2, {j}, {});
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_GT(r.jobs[0].solo_us, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].makespan_us, r.jobs[0].solo_us);
  EXPECT_DOUBLE_EQ(r.jobs[0].slowdown, 1.0);
}

// ---------------------------------------------------------------------------
// Spec parsing.

TEST(TenantSpecTest, TrafficSpecRoundTripsAndValidates) {
  const auto t =
      tenant::TrafficSpec::parse("uniform:load=0.3,bytes=64K,seed=9");
  EXPECT_EQ(t.matrix, tenant::Matrix::uniform);
  EXPECT_DOUBLE_EQ(t.load, 0.3);
  EXPECT_EQ(t.bytes, 65536u);
  EXPECT_EQ(t.seed, 9u);
  EXPECT_EQ(tenant::TrafficSpec::parse(t.to_string()).to_string(),
            t.to_string());
  const auto h = tenant::TrafficSpec::parse("hotspot:hot_frac=0.8,hot_node=2");
  EXPECT_EQ(h.matrix, tenant::Matrix::hotspot);
  EXPECT_DOUBLE_EQ(h.hot_frac, 0.8);
  EXPECT_EQ(h.hot_node, 2);
  const auto p = tenant::TrafficSpec::parse("permutation:shift=3");
  EXPECT_EQ(p.matrix, tenant::Matrix::permutation);
  EXPECT_EQ(p.shift, 3);
  EXPECT_TRUE(tenant::TrafficSpec::parse("").empty());
  EXPECT_THROW((void)tenant::TrafficSpec::parse("poisson"),
               util::InvariantError);
  EXPECT_THROW((void)tenant::TrafficSpec::parse("uniform:load=0"),
               util::InvariantError);
  EXPECT_THROW((void)tenant::TrafficSpec::parse("uniform:load=1.5"),
               util::InvariantError);
  EXPECT_THROW((void)tenant::TrafficSpec::parse("hotspot:hot_frac=2"),
               util::InvariantError);
}

TEST(TenantSpecTest, FailSpecRoundTripsAndValidates) {
  const auto f = tenant::FailSpec::parse(
      "way=0,at_us=30,recover_us=150;way=1,leaf=0,at_us=60");
  ASSERT_EQ(f.events.size(), 2u);
  EXPECT_EQ(f.events[0].way, 0);
  EXPECT_EQ(f.events[0].leaf, -1);
  EXPECT_DOUBLE_EQ(f.events[0].at_us, 30.0);
  EXPECT_DOUBLE_EQ(f.events[0].recover_us, 150.0);
  EXPECT_EQ(f.events[1].way, 1);
  EXPECT_EQ(f.events[1].leaf, 0);
  EXPECT_DOUBLE_EQ(f.events[1].recover_us, 0.0);  // never recovers
  EXPECT_EQ(tenant::FailSpec::parse(f.to_string()).to_string(),
            f.to_string());
  EXPECT_TRUE(tenant::FailSpec::parse("").empty());
  EXPECT_FALSE(tenant::FailSpec::default_spec().empty());
  EXPECT_THROW((void)tenant::FailSpec::parse("at_us=30"),  // way= required
               util::InvariantError);
  EXPECT_THROW((void)tenant::FailSpec::parse("way=0,at_us=50,recover_us=40"),
               util::InvariantError);
}

// ---------------------------------------------------------------------------
// Shape validation.

TEST(TenantValidateTest, RejectsBadMixes) {
  const auto cfg = net::test_cluster(8);
  tenant::JobSpec j;
  j.nodes = 4;
  // World-only hierarchical algorithms cannot run on a tenant slice.
  tenant::JobSpec world = j;
  world.algo = "dpml";
  EXPECT_THROW((void)tenant::run_tenants(cfg, 2, {world}, {}),
               util::InvariantError);
  // Node budget.
  tenant::JobSpec big = j;
  big.nodes = 16;
  EXPECT_THROW((void)tenant::run_tenants(cfg, 2, {big}, {}),
               util::InvariantError);
  // Background traffic needs the flow fabric.
  tenant::TenantOptions no_fabric;
  no_fabric.fabric = fabric::FabricLevel::none;
  no_fabric.traffic = tenant::TrafficSpec::parse("uniform");
  j.algo = "ring";
  EXPECT_THROW((void)tenant::run_tenants(cfg, 2, {j}, no_fabric),
               util::InvariantError);
  // Overloaded hotspot background (open-loop demand at the hot node above
  // its edge capacity) would never terminate.
  tenant::TenantOptions hot;
  hot.traffic = tenant::TrafficSpec::parse("hotspot:load=0.3,hot_frac=0.8");
  tenant::JobSpec wide = j;
  wide.algo = "ring";
  wide.nodes = 8;
  EXPECT_THROW((void)tenant::run_tenants(cfg, 2, {wide}, hot),
               util::InvariantError);
  // SHArP jobs need a SHArP-capable cluster config.
  auto no_sharp = cfg;
  no_sharp.sharp.reset();
  tenant::JobSpec sj = j;
  sj.algo = "ring";
  sj.sharp = true;
  sj.bytes = 1024;
  EXPECT_THROW((void)tenant::run_tenants(no_sharp, 2, {sj}, {}),
               util::InvariantError);
}

TEST(TenantValidateTest, HotspotDemandExactlyAtCapacityIsAccepted) {
  // Regression: the rejection boundary used `< 1.0`, so an open-loop hot
  // demand of exactly 1.0 — load * hot_frac * (nodes - 1) at capacity,
  // marginally stable — was rejected with a misleading ">= 1" message.
  // 5 nodes, load 0.5, hot_frac 0.5: demand = 0.5 * 0.5 * 4 = 1.0 exactly.
  const auto cfg = net::test_cluster(8);
  tenant::JobSpec j;
  j.name = "boundary";
  j.kind = coll::CollKind::allreduce;
  j.algo = "ring";
  j.nodes = 5;
  j.bytes = 16384;
  j.iterations = 2;
  tenant::TenantOptions at_capacity;
  at_capacity.solo_baseline = false;
  at_capacity.traffic =
      tenant::TrafficSpec::parse("hotspot:load=0.5,hot_frac=0.5");
  const auto r = tenant::run_tenants(cfg, 1, {j}, at_capacity);
  EXPECT_GT(r.makespan_us, 0.0);
  EXPECT_GT(r.bg_flows, 0u);
  // Just past the boundary still throws.
  tenant::TenantOptions over;
  over.solo_baseline = false;
  over.traffic = tenant::TrafficSpec::parse("hotspot:load=0.51,hot_frac=0.5");
  EXPECT_THROW((void)tenant::run_tenants(cfg, 1, {j}, over),
               util::InvariantError);
}

TEST(TenantValidateTest, DefaultJobsFitTheClusterAndPassValidation) {
  for (int count : {1, 2, 4}) {
    const auto cfg = net::test_cluster(8);
    const auto jobs = tenant::default_jobs(count, cfg, 8);
    ASSERT_EQ(jobs.size(), static_cast<std::size_t>(count));
    int total = 0;
    for (const auto& j : jobs) total += j.nodes;
    EXPECT_LE(total, 8);
    tenant::TenantOptions opt;
    opt.solo_baseline = false;  // shape check only; keep it cheap
    const auto r = tenant::run_tenants(cfg, 1, jobs, opt);
    EXPECT_EQ(r.jobs.size(), jobs.size());
    EXPECT_GT(r.makespan_us, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Tenancy-off contract: the single-job --fabric path is bit-identical to the
// pre-tenant tree. Golden values captured with measure_collective before the
// tenant subsystem (and the fabric's group/failure extensions) landed.

struct Golden {
  const char* cluster;
  int nodes;
  int ppn;
  const char* kind;
  const char* algo;
  std::size_t bytes;
  double avg_us;
};

TEST(TenantGoldenTest, SingleJobFabricLatenciesAreUnchanged) {
  const Golden goldens[] = {
      {"test", 4, 2, "allreduce", "ring", 16384ul, 24.027334},
      {"test", 8, 2, "allreduce", "dpml", 65536ul, 91.269467},
      {"test", 8, 2, "alltoall", "auto", 4096ul, 68.924557},
      {"D", 8, 4, "allreduce", "dpml", 262144ul, 556.009774},
      {"D", 8, 4, "allgather", "ring", 16384ul, 276.144000},
      {"B", 8, 4, "allreduce", "rsa", 65536ul, 85.310941},
  };
  for (const Golden& g : goldens) {
    core::MeasureOptions opt;
    opt.iterations = 3;
    opt.warmup = 1;
    opt.fabric = fabric::FabricLevel::links;
    coll::CollSpec spec;
    spec.algo = g.algo;
    spec.leaders = 4;
    const auto r = core::measure_collective(
        coll::coll_kind_by_name(g.kind), net::cluster_by_name(g.cluster),
        g.nodes, g.ppn, g.bytes, spec, opt);
    EXPECT_NEAR(r.avg_us, g.avg_us, 1e-4)
        << g.cluster << " " << g.kind << "/" << g.algo;
  }
}

}  // namespace
}  // namespace dpml
