// Direct unit tests of the MPI matching engine (posted/unexpected queues,
// wildcard semantics, arrival-order matching).
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "simmpi/message.hpp"

namespace dpml::simmpi {
namespace {

Envelope env(int ctx, int src, int tag, std::size_t bytes = 0) {
  Envelope e;
  e.ctx = ctx;
  e.src = src;
  e.tag = tag;
  e.bytes = bytes;
  return e;
}

struct RecvProbe {
  explicit RecvProbe(sim::Engine& e, int ctx, int src, int tag,
                     std::size_t cap = 1024)
      : done(e) {
    pr.ctx = ctx;
    pr.src = src;
    pr.tag = tag;
    pr.capacity = cap;
    pr.done = &done;
  }
  sim::Flag done;
  PostedRecv pr;
};

TEST(Matcher, DeliveryBeforePostGoesUnexpected) {
  sim::Engine e;
  Matcher m;
  m.deliver(env(0, 3, 7));
  EXPECT_EQ(m.unexpected_count(), 1u);
  RecvProbe p(e, 0, 3, 7);
  m.post_recv(&p.pr);
  EXPECT_TRUE(p.done.posted());
  EXPECT_EQ(m.unexpected_count(), 0u);
  EXPECT_EQ(p.pr.recv_src, 3);
  EXPECT_EQ(p.pr.recv_tag, 7);
}

TEST(Matcher, PostBeforeDeliveryMatches) {
  sim::Engine e;
  Matcher m;
  RecvProbe p(e, 0, 1, 2);
  m.post_recv(&p.pr);
  EXPECT_EQ(m.posted_count(), 1u);
  m.deliver(env(0, 1, 2));
  EXPECT_TRUE(p.done.posted());
  EXPECT_EQ(m.posted_count(), 0u);
}

TEST(Matcher, ContextSourceTagAllMustMatch) {
  sim::Engine e;
  Matcher m;
  RecvProbe p(e, 5, 1, 2);
  m.post_recv(&p.pr);
  m.deliver(env(4, 1, 2));  // wrong ctx
  m.deliver(env(5, 0, 2));  // wrong src
  m.deliver(env(5, 1, 3));  // wrong tag
  EXPECT_FALSE(p.done.posted());
  EXPECT_EQ(m.unexpected_count(), 3u);
  m.deliver(env(5, 1, 2));
  EXPECT_TRUE(p.done.posted());
}

TEST(Matcher, WildcardsMatchAnything) {
  sim::Engine e;
  Matcher m;
  RecvProbe p(e, 0, kAnySource, kAnyTag);
  m.post_recv(&p.pr);
  m.deliver(env(0, 9, 42));
  EXPECT_TRUE(p.done.posted());
  EXPECT_EQ(p.pr.recv_src, 9);
  EXPECT_EQ(p.pr.recv_tag, 42);
}

TEST(Matcher, WildcardDoesNotCrossContext) {
  sim::Engine e;
  Matcher m;
  RecvProbe p(e, 1, kAnySource, kAnyTag);
  m.post_recv(&p.pr);
  m.deliver(env(2, 0, 0));
  EXPECT_FALSE(p.done.posted());
}

TEST(Matcher, ArrivalOrderWithinMatchingClass) {
  // Two messages with the same envelope: the earlier arrival matches first.
  sim::Engine e;
  Matcher m;
  Envelope e1 = env(0, 1, 5, 11);
  Envelope e2 = env(0, 1, 5, 22);
  m.deliver(std::move(e1));
  m.deliver(std::move(e2));
  RecvProbe a(e, 0, 1, 5);
  m.post_recv(&a.pr);
  EXPECT_EQ(a.pr.recv_bytes, 11u);
  RecvProbe b(e, 0, 1, 5);
  m.post_recv(&b.pr);
  EXPECT_EQ(b.pr.recv_bytes, 22u);
}

TEST(Matcher, PostedOrderForWildcards) {
  // Two posted receives that both match: the earlier post wins.
  sim::Engine e;
  Matcher m;
  RecvProbe first(e, 0, kAnySource, kAnyTag);
  RecvProbe second(e, 0, kAnySource, kAnyTag);
  m.post_recv(&first.pr);
  m.post_recv(&second.pr);
  m.deliver(env(0, 2, 2));
  EXPECT_TRUE(first.done.posted());
  EXPECT_FALSE(second.done.posted());
}

TEST(Matcher, SelectiveRecvSkipsNonMatching) {
  // A tagged recv must skip a non-matching unexpected message and leave it
  // queued for a later matching recv.
  sim::Engine e;
  Matcher m;
  m.deliver(env(0, 1, /*tag=*/10, 1));
  m.deliver(env(0, 1, /*tag=*/20, 2));
  RecvProbe want20(e, 0, 1, 20);
  m.post_recv(&want20.pr);
  EXPECT_TRUE(want20.done.posted());
  EXPECT_EQ(want20.pr.recv_bytes, 2u);
  EXPECT_EQ(m.unexpected_count(), 1u);
  RecvProbe want10(e, 0, 1, 10);
  m.post_recv(&want10.pr);
  EXPECT_EQ(want10.pr.recv_bytes, 1u);
}

TEST(Matcher, TruncationFlagSet) {
  sim::Engine e;
  Matcher m;
  RecvProbe p(e, 0, 1, 1, /*cap=*/4);
  m.post_recv(&p.pr);
  m.deliver(env(0, 1, 1, /*bytes=*/64));
  EXPECT_TRUE(p.done.posted());
  EXPECT_TRUE(p.pr.truncated);
}

TEST(Matcher, EagerPayloadCopied) {
  sim::Engine e;
  Matcher m;
  std::vector<std::byte> out(4);
  RecvProbe p(e, 0, 1, 1, 4);
  p.pr.out = MutBytes{out};
  m.post_recv(&p.pr);
  Envelope msg = env(0, 1, 1, 4);
  msg.data = {std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4}};
  m.deliver(std::move(msg));
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_EQ(out[3], std::byte{4});
}

TEST(Matcher, RendezvousMatchInvokesCallback) {
  sim::Engine e;
  Matcher m;
  bool matched = false;
  Envelope rts = env(0, 2, 9, 1 << 20);
  rts.rendezvous = true;
  rts.on_match = [&](PostedRecv& pr) {
    matched = true;
    EXPECT_EQ(pr.recv_bytes, 1u << 20);
    pr.done->post();  // payload delivery stand-in
  };
  m.deliver(std::move(rts));
  RecvProbe p(e, 0, 2, 9, 1 << 20);
  m.post_recv(&p.pr);
  EXPECT_TRUE(matched);
  EXPECT_TRUE(p.done.posted());
}

}  // namespace
}  // namespace dpml::simmpi
