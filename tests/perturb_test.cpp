// Perturbation subsystem tests.
//
// Three contracts are locked here:
//   1. An empty (or merely neutral) PerturbSpec is *bit-identical* to the
//      pristine simulator, across every registered algorithm of all four
//      collective kinds — the perturbation layer costs nothing when off.
//   2. Identical specs (seed included) reproduce identical simulated times
//      run-to-run; different seeds realize different noise.
//   3. Each injector does what its model says: jitter/stragglers slow
//      compute, skew staggers collective entries (and is measured by
//      ImbalanceStats), link rules degrade matching paths in their windows.
#include <gtest/gtest.h>

#include <algorithm>

#include "coll/registry.hpp"
#include "core/measure.hpp"
#include "core/selection.hpp"
#include "net/cluster.hpp"
#include "perturb/perturb.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/stats.hpp"
#include "util/error.hpp"

namespace dpml {
namespace {

using core::CollKind;
using core::MeasureOptions;
using perturb::PerturbSpec;

// ---------------------------------------------------------------------------
// Spec parsing

TEST(PerturbSpec, EmptyFormsAreEmpty) {
  EXPECT_TRUE(PerturbSpec{}.empty());
  EXPECT_TRUE(PerturbSpec::parse("").empty());
  EXPECT_TRUE(PerturbSpec::parse("  ").empty());
  // A bare seed configures no injector: still the pristine machine.
  EXPECT_TRUE(PerturbSpec::parse("seed=42").empty());
  // Neutral stragglers (scale 1) perturb nothing.
  EXPECT_TRUE(PerturbSpec::parse("stragglers=k=3,scale=1").empty());
  EXPECT_EQ(PerturbSpec{}.to_string(), "");
}

TEST(PerturbSpec, ParsesEveryInjector) {
  const auto s = PerturbSpec::parse(
      "jitter=lognormal:sigma=0.3;skew=uniform:max_us=50;"
      "link=bw=0.5,lat_us=5,src=0,dst=1,from_us=10,until_us=20;"
      "stragglers=k=2,scale=3;seed=7");
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.jitter.kind, perturb::JitterKind::lognormal);
  EXPECT_DOUBLE_EQ(s.jitter.sigma, 0.3);
  EXPECT_EQ(s.skew.kind, perturb::SkewKind::uniform);
  EXPECT_EQ(s.skew.max, sim::us(50.0));
  ASSERT_EQ(s.links.size(), 1u);
  EXPECT_DOUBLE_EQ(s.links[0].bw_scale, 0.5);
  EXPECT_EQ(s.links[0].extra_latency, sim::us(5.0));
  EXPECT_EQ(s.links[0].src, 0);
  EXPECT_EQ(s.links[0].dst, 1);
  EXPECT_EQ(s.links[0].from, sim::us(10.0));
  EXPECT_EQ(s.links[0].until, sim::us(20.0));
  EXPECT_EQ(s.stragglers.count, 2);
  EXPECT_DOUBLE_EQ(s.stragglers.scale, 3.0);
  EXPECT_EQ(s.seed, 7u);
}

TEST(PerturbSpec, FixedSkewOffsets) {
  const auto s = PerturbSpec::parse("skew=fixed:us=0/10/20");
  EXPECT_EQ(s.skew.kind, perturb::SkewKind::fixed);
  ASSERT_EQ(s.skew.offsets.size(), 3u);
  EXPECT_EQ(s.skew.offsets[1], sim::us(10.0));
}

TEST(PerturbSpec, RoundTripsThroughToString) {
  const std::string text =
      "jitter=spike:prob=0.05,scale=4;skew=fixed:us=0/25;"
      "link=bw=0.5,lat_us=2;stragglers=k=1,scale=2;seed=9";
  const auto s = PerturbSpec::parse(text);
  // Canonical form re-parses to the same canonical form.
  EXPECT_EQ(PerturbSpec::parse(s.to_string()).to_string(), s.to_string());
}

TEST(PerturbSpec, UnknownInjectorListsAllValidOnes) {
  try {
    PerturbSpec::parse("jiter=uniform:frac=0.1");
    FAIL() << "expected InvariantError";
  } catch (const util::InvariantError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown perturbation injector 'jiter'"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("jitter, skew, link, stragglers, seed"),
              std::string::npos)
        << msg;
  }
}

TEST(PerturbSpec, BadParametersAreNamed) {
  EXPECT_THROW(PerturbSpec::parse("jitter=gaussian:sigma=1"),
               util::InvariantError);
  EXPECT_THROW(PerturbSpec::parse("jitter=uniform:width=0.1"),
               util::InvariantError);
  EXPECT_THROW(PerturbSpec::parse("jitter=uniform:frac=1.5"),
               util::InvariantError);
  EXPECT_THROW(PerturbSpec::parse("skew=fixed"), util::InvariantError);
  EXPECT_THROW(PerturbSpec::parse("link=bw=0"), util::InvariantError);
  EXPECT_THROW(PerturbSpec::parse("link=bw=0.5,from_us=20,until_us=10"),
               util::InvariantError);
  EXPECT_THROW(PerturbSpec::parse("stragglers=k=-1"), util::InvariantError);
  EXPECT_THROW(PerturbSpec::parse("seed=abc"), util::InvariantError);
}

// ---------------------------------------------------------------------------
// Runtime units

TEST(Perturbation, EmptySpecBuildsNoRuntime) {
  simmpi::RunOptions opt;
  opt.perturb = PerturbSpec::parse("seed=123");
  simmpi::Machine m(net::test_cluster(2), 2, 2, opt);
  EXPECT_EQ(m.perturbation(), nullptr);
}

TEST(Perturbation, StragglerChoiceIsSeededAndSorted) {
  auto spec = PerturbSpec::parse("stragglers=k=3,scale=2;seed=5");
  perturb::Perturbation a(spec, 64), b(spec, 64);
  ASSERT_EQ(a.straggler_ranks().size(), 3u);
  EXPECT_EQ(a.straggler_ranks(), b.straggler_ranks());
  EXPECT_TRUE(std::is_sorted(a.straggler_ranks().begin(),
                             a.straggler_ranks().end()));
  for (int r : a.straggler_ranks()) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 64);
    EXPECT_DOUBLE_EQ(a.charge_scale(r), 2.0);
  }
  spec.seed = 6;
  perturb::Perturbation c(spec, 64);
  EXPECT_NE(a.straggler_ranks(), c.straggler_ranks());
}

TEST(Perturbation, LinkRulesMatchSymmetricallyAndInWindows) {
  const auto spec = PerturbSpec::parse(
      "link=bw=0.25,lat_us=5,src=0,dst=1,from_us=10,until_us=20;"
      "link=bw=0.5,dst=1");
  perturb::Perturbation p(spec, 8);
  ASSERT_TRUE(p.has_link_rules());
  // Inside the window, both rules hit the (0,1) pair: scales multiply.
  EXPECT_DOUBLE_EQ(p.link_bw_scale(0, 1, sim::us(15.0)), 0.25 * 0.5);
  EXPECT_DOUBLE_EQ(p.link_bw_scale(1, 0, sim::us(15.0)), 0.25 * 0.5);
  EXPECT_EQ(p.link_extra_latency(0, 1, sim::us(15.0)), sim::us(5.0));
  // Outside the window only the always-on wildcard rule applies.
  EXPECT_DOUBLE_EQ(p.link_bw_scale(0, 1, sim::us(5.0)), 0.5);
  EXPECT_DOUBLE_EQ(p.link_bw_scale(0, 1, sim::us(20.0)), 0.5);
  EXPECT_EQ(p.link_extra_latency(0, 1, sim::us(25.0)), 0);
  // Pairs not involving node 1 match neither rule.
  EXPECT_DOUBLE_EQ(p.link_bw_scale(2, 3, sim::us(15.0)), 1.0);
}

TEST(Perturbation, NestedCollectivesSkewOnlyTheOutermostEntry) {
  auto spec = PerturbSpec::parse("skew=fixed:us=0/10");
  perturb::Perturbation p(spec, 2);
  EXPECT_TRUE(p.enter_collective(1));   // outermost: skew applies
  EXPECT_FALSE(p.enter_collective(1));  // nested dispatch: no re-skew
  p.exit_collective(1);
  p.exit_collective(1);
  EXPECT_TRUE(p.enter_collective(1));
  EXPECT_EQ(p.arrival_offset(1), sim::us(10.0));
  EXPECT_EQ(p.arrival_offset(0), 0);
}

TEST(ImbalanceTracker, FoldsPerOpSkewAndWait) {
  simmpi::ImbalanceTracker t;
  // Op 0 of key "a": entries at 0/30/10, exits at 100/100/120.
  t.note("a", 3, 0, 0, 100);
  t.note("a", 3, 1, sim::us(30.0), 100);
  EXPECT_TRUE(t.stats().empty());  // still open until all parties report
  t.note("a", 3, 2, sim::us(10.0), 120);
  const auto& st = t.stats().at("a");
  EXPECT_EQ(st.ops, 1u);
  EXPECT_EQ(st.entry_skew_max, sim::us(30.0));
  EXPECT_EQ(st.exit_skew_total, sim::Time{20});
  // Summed wait: (30-0) + (30-30) + (30-10) us.
  EXPECT_EQ(st.wait_total, sim::us(50.0));
}

// ---------------------------------------------------------------------------
// Bit-identity of empty and neutral specs, across the whole registry

// Measures every registered algorithm of every collective kind on the test
// cluster and returns the latencies. Two sizes, straddling the rendezvous
// threshold, so eager, rendezvous, and shm paths are all exercised.
std::vector<double> measure_all(const MeasureOptions& opt) {
  const auto cfg = net::test_cluster(4);
  std::vector<double> out;
  for (CollKind kind : coll::kAllCollKinds) {
    for (const coll::CollDescriptor* d :
         coll::CollRegistry::instance().list(kind)) {
      core::CollSpec spec;
      spec.algo = d->name;
      spec.leaders = 2;
      for (std::size_t bytes : {512ul, 8192ul}) {
        out.push_back(core::measure_collective(kind, cfg, 4, 4, bytes, spec,
                                               opt)
                          .avg_us);
      }
    }
  }
  return out;
}

TEST(PerturbGolden, EmptyAndNeutralSpecsAreBitIdentical) {
  MeasureOptions base;
  base.iterations = 2;
  base.warmup = 1;
  const std::vector<double> clean = measure_all(base);
  EXPECT_GT(clean.size(), 20u);  // the registry is populated

  // Empty spec (different seed is irrelevant): no runtime is built.
  MeasureOptions empty = base;
  empty.perturb = PerturbSpec::parse("seed=99");
  EXPECT_EQ(measure_all(empty), clean);

  // Neutral spec: a bw=1 link rule *does* build a Perturbation and routes
  // every collective through the attribution wrapper and the scale hooks —
  // all of which must be exact no-ops at factor 1 / offset 0.
  MeasureOptions neutral = base;
  neutral.perturb = PerturbSpec::parse("link=bw=1");
  EXPECT_FALSE(neutral.perturb.empty());
  EXPECT_EQ(measure_all(neutral), clean);
}

// ---------------------------------------------------------------------------
// Reproducibility and injector effects

MeasureOptions perturbed_opt(const std::string& spec, int reps = 1) {
  MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  opt.repetitions = reps;
  opt.perturb = PerturbSpec::parse(spec);
  return opt;
}

double measure_dpml(const MeasureOptions& opt, std::size_t bytes = 8192) {
  core::CollSpec spec;
  spec.algo = "dpml";
  spec.leaders = 2;
  return core::measure_collective(CollKind::allreduce, net::test_cluster(4),
                                  4, 4, bytes, spec, opt)
      .avg_us;
}

TEST(PerturbRepro, IdenticalSeedsReproduceIdenticalTimes) {
  const std::string spec =
      "jitter=lognormal:sigma=0.3;skew=uniform:max_us=20;"
      "stragglers=k=2,scale=2;seed=11";
  const double a = measure_dpml(perturbed_opt(spec, 3));
  const double b = measure_dpml(perturbed_opt(spec, 3));
  EXPECT_EQ(a, b);  // exact: same seeds, same draws, same event order
}

TEST(PerturbRepro, DifferentSeedsRealizeDifferentNoise) {
  const double a =
      measure_dpml(perturbed_opt("jitter=lognormal:sigma=0.3;seed=1"));
  const double b =
      measure_dpml(perturbed_opt("jitter=lognormal:sigma=0.3;seed=2"));
  EXPECT_NE(a, b);
}

TEST(PerturbRepro, FabricRunsAreSeedDeterministic) {
  // The clean-path guarantee extends to fabric_level=links: the flow
  // allocator iterates in deterministic order, so identical seeds must
  // reproduce identical simulated times even with perturbations active.
  const std::string spec =
      "jitter=lognormal:sigma=0.3;link=bw=0.5;seed=11";
  auto opt = perturbed_opt(spec, 2);
  opt.fabric = fabric::FabricLevel::links;
  const double a = measure_dpml(opt, 65536);
  const double b = measure_dpml(opt, 65536);
  EXPECT_EQ(a, b);
}

TEST(PerturbEffect, LinkDegradationScalesFabricCapacities) {
  // Under the flow fabric, link rules act as per-link capacity scaling
  // rather than LogGP wire stretching — the degraded run must still be
  // strictly slower than the neutral bw=1 baseline.
  auto clean = perturbed_opt("link=bw=1");
  clean.fabric = fabric::FabricLevel::links;
  auto degraded = perturbed_opt("link=bw=0.25");
  degraded.fabric = fabric::FabricLevel::links;
  EXPECT_GT(measure_dpml(degraded, 65536), measure_dpml(clean, 65536));
}

TEST(PerturbEffect, JitterSpikesSlowTheRun) {
  const double clean = measure_dpml(perturbed_opt("link=bw=1"));
  // prob=1 fires the spike on every compute charge: strictly slower.
  const double noisy =
      measure_dpml(perturbed_opt("jitter=spike:prob=1,scale=3"));
  EXPECT_GT(noisy, clean);
}

TEST(PerturbEffect, StragglersSlowTheRun) {
  const double clean = measure_dpml(perturbed_opt("link=bw=1"));
  const double straggling =
      measure_dpml(perturbed_opt("stragglers=k=2,scale=4;seed=3"));
  EXPECT_GT(straggling, clean);
}

TEST(PerturbEffect, LinkDegradationSlowsInterNodeTraffic) {
  const double clean = measure_dpml(perturbed_opt("link=bw=1"), 65536);
  const double degraded =
      measure_dpml(perturbed_opt("link=bw=0.25"), 65536);
  EXPECT_GT(degraded, clean);
}

TEST(PerturbEffect, FixedSkewIsMeasuredByImbalanceStats) {
  core::CollSpec spec;
  spec.algo = "dpml";
  spec.leaders = 2;
  const auto opt = perturbed_opt("skew=fixed:us=0/50");
  const auto r = core::measure_collective(
      CollKind::allreduce, net::test_cluster(4), 4, 4, 4096, spec, opt);
  // Odd ranks enter 50us after even ranks: per-op entry skew is exactly
  // 50us, and 8 of 16 ranks wait out the offset.
  EXPECT_NEAR(r.entry_skew_avg_us, 50.0, 1e-6);
  EXPECT_NEAR(r.wait_avg_us, 8 * 50.0, 1e-6);
  EXPECT_GT(r.imbalance_ops, 0u);
  const double clean = measure_dpml(perturbed_opt("link=bw=1"), 4096);
  EXPECT_GT(r.avg_us, clean);
}

TEST(PerturbMeasure, RepetitionsPopulatePercentiles) {
  const auto opt = perturbed_opt("jitter=lognormal:sigma=0.3;seed=4", 5);
  core::CollSpec spec;
  spec.algo = "dpml";
  spec.leaders = 2;
  const auto r = core::measure_collective(
      CollKind::allreduce, net::test_cluster(4), 4, 4, 8192, spec, opt);
  EXPECT_GT(r.median_us, 0.0);
  EXPECT_LE(r.best_us, r.median_us);
  EXPECT_LE(r.median_us, r.p99_us);
  EXPECT_LE(r.p99_us, r.worst_us);
}

TEST(PerturbMeasure, DataModeStaysVerifiedUnderNoise) {
  // Perturbations move time, never bytes: results remain bit-exact.
  MeasureOptions opt = perturbed_opt(
      "jitter=lognormal:sigma=0.4;skew=uniform:max_us=30;"
      "stragglers=k=2,scale=3;link=bw=0.5;seed=8");
  opt.with_data = true;
  core::CollSpec spec;
  spec.algo = "dpml";
  spec.leaders = 2;
  for (CollKind kind : coll::kAllCollKinds) {
    core::CollSpec s = spec;
    if (kind != CollKind::allreduce) s.algo = "auto";
    const auto r = core::measure_collective(kind, net::test_cluster(4), 4, 4,
                                            2048, s, opt);
    EXPECT_TRUE(r.verified) << coll::coll_kind_name(kind);
  }
}

TEST(PerturbTuner, TunerSweepsUnderAPerturbSpec) {
  // The tuner threads MeasureOptions through: tuning under noise picks a
  // configuration from perturbed measurements without error.
  const auto opt = perturbed_opt("jitter=uniform:frac=0.2;seed=2");
  const auto table = core::SelectionTable::tune(
      CollKind::allreduce, net::test_cluster(4), 4, 4, {1024, 16384}, opt);
  EXPECT_FALSE(table.serialize().empty());
}

}  // namespace
}  // namespace dpml
