// Collective registry: descriptor listing, dispatch-time validation, exact
// equivalence of the registry path with direct algorithm invocation, the
// generic tuner, op-qualified selection tables, and data-mode verification
// across all four collective kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "coll/alltoall.hpp"
#include "coll/bcast.hpp"
#include "coll/reduce.hpp"
#include "coll/registry.hpp"
#include "core/selection.hpp"
#include "net/cluster.hpp"
#include "simmpi/machine.hpp"

namespace dpml {
namespace {

using coll::CollKind;
using coll::CollRegistry;
using coll::CollSpec;
using simmpi::Machine;
using simmpi::Rank;

bool has_name(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

// ---------------------------------------------------------------------------
// Registry contents

TEST(Registry, ListsEveryEnumEraAllreduceAlgorithm) {
  const auto names = CollRegistry::instance().names(CollKind::allreduce);
  for (const char* n :
       {"rd", "rsa", "ring", "cring", "binomial", "gather-bcast",
        "single-leader", "dpml", "sharp-node-leader", "sharp-socket-leader",
        "mvapich2", "intelmpi", "dpml-auto"}) {
    EXPECT_TRUE(has_name(names, n)) << "missing allreduce algorithm " << n;
  }
  EXPECT_EQ(names.size(), 13u);
}

TEST(Registry, ListsOtherCollectiveKinds) {
  const auto reduce = CollRegistry::instance().names(CollKind::reduce);
  for (const char* n :
       {"binomial", "rsa-gather", "single-leader", "dpml", "auto"}) {
    EXPECT_TRUE(has_name(reduce, n)) << "missing reduce algorithm " << n;
  }
  const auto bcast = CollRegistry::instance().names(CollKind::bcast);
  for (const char* n :
       {"binomial", "scatter-allgather", "single-leader", "auto"}) {
    EXPECT_TRUE(has_name(bcast, n)) << "missing bcast algorithm " << n;
  }
  const auto alltoall = CollRegistry::instance().names(CollKind::alltoall);
  for (const char* n : {"bruck", "pairwise", "auto"}) {
    EXPECT_TRUE(has_name(alltoall, n)) << "missing alltoall algorithm " << n;
  }
}

TEST(Registry, CapabilityFlagsMatchAlgorithmProperties) {
  const auto& reg = CollRegistry::instance();
  EXPECT_TRUE(reg.at(CollKind::allreduce, "dpml").caps.uses_leaders);
  EXPECT_TRUE(reg.at(CollKind::allreduce, "dpml").caps.supports_pipelining);
  EXPECT_TRUE(reg.at(CollKind::allreduce, "sharp-node-leader").caps.needs_fabric);
  EXPECT_EQ(reg.at(CollKind::allreduce, "sharp-node-leader").caps.max_tune_bytes,
            4096u);
  EXPECT_FALSE(reg.at(CollKind::allreduce, "rd").caps.needs_fabric);
  EXPECT_FALSE(reg.at(CollKind::allreduce, "rd").caps.tunable);
  EXPECT_TRUE(reg.at(CollKind::reduce, "dpml").caps.uses_leaders);
  // reduce_dpml has no pipelined inter-node phase.
  EXPECT_FALSE(reg.at(CollKind::reduce, "dpml").caps.supports_pipelining);
}

TEST(Registry, UnknownNameErrorListsRegisteredNames) {
  try {
    CollRegistry::instance().at(CollKind::allreduce, "bogus");
    FAIL() << "expected InvariantError";
  } catch (const util::InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("allreduce"), std::string::npos);
    EXPECT_NE(what.find("dpml"), std::string::npos);
    EXPECT_NE(what.find("rd"), std::string::npos);
  }
}

TEST(Registry, AlgorithmByNameErrorListsValidNames) {
  try {
    core::algorithm_by_name("not-an-algo");
    FAIL() << "expected InvariantError";
  } catch (const util::InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not-an-algo"), std::string::npos);
    EXPECT_NE(what.find("dpml-auto"), std::string::npos);
    EXPECT_NE(what.find("sharp-socket-leader"), std::string::npos);
  }
}

TEST(Registry, RejectsDuplicateRegistration) {
  coll::CollDescriptor d;
  d.name = "dpml";  // already registered for allreduce
  d.kind = CollKind::allreduce;
  d.make = [](coll::CollArgs, const CollSpec&) { return sim::CoTask<void>{}; };
  EXPECT_THROW(CollRegistry::instance().add(d), util::InvariantError);
}

// ---------------------------------------------------------------------------
// Equivalence: the registry path must charge exactly the same simulated
// time as invoking the src/coll coroutine directly.

sim::Time direct_allreduce_time(core::Algorithm algo, int leaders, int k) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(4), 4, 4, opt);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = 4096;
    a.inplace = true;
    switch (algo) {
      case core::Algorithm::recursive_doubling:
        co_await coll::allreduce_recursive_doubling(a);
        break;
      case core::Algorithm::reduce_scatter_allgather:
        co_await coll::allreduce_reduce_scatter_allgather(a);
        break;
      case core::Algorithm::ring:
        co_await coll::allreduce_ring(a);
        break;
      case core::Algorithm::binomial:
        co_await coll::allreduce_binomial(a);
        break;
      case core::Algorithm::gather_bcast:
        co_await coll::allreduce_gather_bcast(a);
        break;
      case core::Algorithm::single_leader:
        co_await coll::allreduce_single_leader(a, coll::InterAlgo::automatic);
        break;
      case core::Algorithm::dpml: {
        coll::DpmlParams p;
        p.leaders = leaders;
        p.pipeline_k = k;
        co_await coll::allreduce_dpml(a, p);
        break;
      }
      case core::Algorithm::mvapich2:
        co_await coll::allreduce_mvapich2(a);
        break;
      case core::Algorithm::intelmpi:
        co_await coll::allreduce_intelmpi(a);
        break;
      default:
        break;
    }
  });
  return m.now();
}

sim::Time registry_allreduce_time(const std::string& name, int leaders,
                                  int k) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(4), 4, 4, opt);
  CollSpec spec;
  spec.algo = name;
  spec.leaders = leaders;
  spec.pipeline_k = k;
  m.run([&](Rank& r) -> sim::CoTask<void> {
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = 4096;
    a.inplace = true;
    co_await core::run_collective(CollKind::allreduce, a, spec);
  });
  return m.now();
}

TEST(Equivalence, RegistryPathMatchesDirectInvocationExactly) {
  struct Case {
    core::Algorithm algo;
    const char* name;
    int leaders;
    int k;
  };
  const Case cases[] = {
      {core::Algorithm::recursive_doubling, "rd", 1, 1},
      {core::Algorithm::reduce_scatter_allgather, "rsa", 1, 1},
      {core::Algorithm::ring, "ring", 1, 1},
      {core::Algorithm::binomial, "binomial", 1, 1},
      {core::Algorithm::gather_bcast, "gather-bcast", 1, 1},
      {core::Algorithm::single_leader, "single-leader", 1, 1},
      {core::Algorithm::dpml, "dpml", 2, 1},
      {core::Algorithm::dpml, "dpml", 4, 2},
      {core::Algorithm::mvapich2, "mvapich2", 1, 1},
      {core::Algorithm::intelmpi, "intelmpi", 1, 1},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(direct_allreduce_time(c.algo, c.leaders, c.k),
              registry_allreduce_time(c.name, c.leaders, c.k))
        << c.name << " l=" << c.leaders << " k=" << c.k;
  }
}

TEST(Equivalence, RunAllreduceShimMatchesGenericEntry) {
  for (core::Algorithm algo :
       {core::Algorithm::recursive_doubling, core::Algorithm::dpml,
        core::Algorithm::mvapich2, core::Algorithm::dpml_auto}) {
    auto run = [&](bool generic) {
      simmpi::RunOptions opt;
      opt.with_data = false;
      Machine m(net::test_cluster(4), 4, 4, opt);
      core::AllreduceSpec spec;
      spec.algo = algo;
      spec.leaders = 2;
      m.run([&](Rank& r) -> sim::CoTask<void> {
        coll::CollArgs a;
        a.rank = &r;
        a.comm = &m.world();
        a.count = 1024;
        a.inplace = true;
        if (generic) {
          // Named spec, not a temporary: gcc 12 double-destroys extra
          // temporaries in a co_await full expression (await-temporary).
          const core::CollSpec gspec = core::to_generic(spec);
          co_await core::run_collective(core::CollKind::allreduce, a, gspec);
        } else {
          co_await core::run_allreduce(a, spec);
        }
      });
      return m.now();
    };
    EXPECT_EQ(run(false), run(true)) << core::algorithm_name(algo);
  }
}

TEST(Equivalence, ReduceBcastAlltoallMatchDirectInvocation) {
  auto generic_time = [](CollKind kind, const char* name) {
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(net::test_cluster(4), 4, 4, opt);
    CollSpec spec;
    spec.algo = name;
    spec.leaders = 2;
    m.run([&](Rank& r) -> sim::CoTask<void> {
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 2048;
      a.inplace = true;
      co_await core::run_collective(kind, a, spec);
    });
    return m.now();
  };

  {
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(net::test_cluster(4), 4, 4, opt);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      coll::ReduceArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 2048;
      a.inplace = true;
      coll::DpmlParams p;
      p.leaders = 2;
      co_await coll::reduce(a, coll::ReduceAlgo::dpml, p);
    });
    EXPECT_EQ(m.now(), generic_time(CollKind::reduce, "dpml"));
  }
  {
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(net::test_cluster(4), 4, 4, opt);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      coll::BcastArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.bytes = 2048 * 4;
      co_await coll::bcast(a, coll::BcastAlgo::scatter_allgather);
    });
    EXPECT_EQ(m.now(), generic_time(CollKind::bcast, "scatter-allgather"));
  }
  {
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(net::test_cluster(4), 4, 4, opt);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      coll::AlltoallArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.block_bytes = 2048 * 4;
      co_await coll::alltoall(a, coll::AlltoallAlgo::pairwise);
    });
    EXPECT_EQ(m.now(), generic_time(CollKind::alltoall, "pairwise"));
  }
}

TEST(Equivalence, TracingAttributionDoesNotChangeSimulatedTime) {
  auto run = [](bool trace) {
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(net::test_cluster(4), 4, 4, opt);
    if (trace) m.enable_trace();
    CollSpec spec;
    spec.algo = "dpml";
    spec.leaders = 2;
    m.run([&](Rank& r) -> sim::CoTask<void> {
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 4096;
      a.inplace = true;
      co_await core::run_collective(CollKind::allreduce, a, spec);
    });
    if (trace) {
      // Every rank's participation is attributed with kind + label.
      const auto& stats = m.collective_stats();
      auto it = stats.find("allreduce/dpml(l=2)");
      EXPECT_NE(it, stats.end());
      if (it != stats.end()) {
        EXPECT_EQ(it->second.ops, 16u);
        EXPECT_GT(it->second.rank_time, 0);
      }
      bool found_span = false;
      for (const auto& s : m.tracer().spans()) {
        if (s.category == "allreduce" && s.name == "dpml(l=2)") {
          found_span = true;
          break;
        }
      }
      EXPECT_TRUE(found_span);
    }
    return m.now();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Dispatch-entry validation

TEST(Validation, RejectsBadSpecsBeforeTheCoroutineStarts) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(2), 2, 2, opt);
  coll::CollArgs a;
  a.rank = &m.rank(0);
  a.comm = &m.world();
  a.count = 16;
  a.inplace = true;

  CollSpec bad_leaders;
  bad_leaders.algo = "dpml";
  bad_leaders.leaders = 0;
  EXPECT_THROW(core::run_collective(CollKind::allreduce, a, bad_leaders),
               util::InvariantError);

  CollSpec bad_k;
  bad_k.algo = "dpml";
  bad_k.pipeline_k = 0;
  EXPECT_THROW(core::run_collective(CollKind::allreduce, a, bad_k),
               util::InvariantError);

  CollSpec no_fabric;
  no_fabric.algo = "sharp-node-leader";
  EXPECT_THROW(core::run_collective(CollKind::allreduce, a, no_fabric),
               util::InvariantError);

  CollSpec unknown;
  unknown.algo = "definitely-not-registered";
  EXPECT_THROW(core::run_collective(CollKind::allreduce, a, unknown),
               util::InvariantError);

  coll::CollArgs bad_root = a;
  bad_root.root = 99;
  CollSpec reduce_spec;
  reduce_spec.algo = "binomial";
  EXPECT_THROW(core::run_collective(CollKind::reduce, bad_root, reduce_spec),
               util::InvariantError);
}

TEST(Validation, LeadersClampToPpn) {
  auto run = [](int leaders) {
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(net::test_cluster(4), 4, 2, opt);
    CollSpec spec;
    spec.algo = "dpml";
    spec.leaders = leaders;
    m.run([&](Rank& r) -> sim::CoTask<void> {
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 1024;
      a.inplace = true;
      co_await core::run_collective(CollKind::allreduce, a, spec);
    });
    return m.now();
  };
  // leaders=16 on ppn=2 clamps (with a warning) to the leaders=2 schedule.
  EXPECT_EQ(run(16), run(2));
}

// ---------------------------------------------------------------------------
// Selection tables: legacy and op-qualified entries

TEST(SelectionRegistry, LegacyAllreduceTablesParseUnchanged) {
  const std::string legacy =
      "# tuned on cluster B\n"
      "<=2048   sharp-socket-leader\n"
      "<=8192   dpml 4\n"
      "<=65536  dpml 8\n"
      "*        dpml 16 4\n";
  const auto t = core::SelectionTable::parse(legacy);
  ASSERT_EQ(t.entries().size(), 4u);
  for (const auto& e : t.entries()) {
    EXPECT_EQ(e.kind, CollKind::allreduce);
  }
  EXPECT_EQ(t.select(100).algo, core::Algorithm::sharp_socket_leader);
  EXPECT_EQ(t.select(5000).leaders, 4);
  EXPECT_EQ(t.select(1 << 20).pipeline_k, 4);
}

TEST(SelectionRegistry, OpQualifiedTablesRoundTrip) {
  const std::string text =
      "<=8192   dpml 4 1\n"
      "*        dpml 16 4\n"
      "reduce <=65536 binomial\n"
      "reduce *       dpml 8 1\n"
      "bcast  <=8192  binomial\n"
      "bcast  *       scatter-allgather\n"
      "alltoall *     pairwise\n";
  const auto t = core::SelectionTable::parse(text);
  ASSERT_EQ(t.entries().size(), 7u);
  EXPECT_TRUE(t.has_kind(CollKind::reduce));
  EXPECT_TRUE(t.has_kind(CollKind::alltoall));
  EXPECT_EQ(t.select(CollKind::reduce, 1024).algo, "binomial");
  EXPECT_EQ(t.select(CollKind::reduce, 1 << 20).algo, "dpml");
  EXPECT_EQ(t.select(CollKind::reduce, 1 << 20).leaders, 8);
  EXPECT_EQ(t.select(CollKind::bcast, 1 << 20).algo, "scatter-allgather");
  EXPECT_EQ(t.select(CollKind::alltoall, 64).algo, "pairwise");
  EXPECT_EQ(t.select(4096).algo, core::Algorithm::dpml);

  // Serialize -> parse -> serialize is a fixed point.
  const std::string once = t.serialize();
  const auto t2 = core::SelectionTable::parse(once);
  EXPECT_EQ(t2.serialize(), once);
  ASSERT_EQ(t2.entries().size(), t.entries().size());
  EXPECT_EQ(t2.select(CollKind::reduce, 1 << 20).leaders, 8);
}

TEST(SelectionRegistry, PerKindValidation) {
  // Missing catch-all for the reduce entries.
  EXPECT_THROW(core::SelectionTable::parse("* dpml 4 1\nreduce <=100 binomial\n"),
               util::InvariantError);
  // Descending thresholds within a kind.
  EXPECT_THROW(core::SelectionTable::parse(
                   "reduce <=200 binomial\nreduce <=100 binomial\n"
                   "reduce * dpml 8 1\n* dpml 4 1\n"),
               util::InvariantError);
  // Unknown algorithm for the qualified kind, even if valid for another.
  EXPECT_THROW(core::SelectionTable::parse("bcast * rd\n"),
               util::InvariantError);
  // Selecting a kind with no entries.
  const auto t = core::SelectionTable::parse("* dpml 4 1\n");
  EXPECT_THROW(t.select(CollKind::bcast, 64), util::InvariantError);
}

TEST(SelectionRegistry, TableDispatchRunsNonAllreduceKinds) {
  const auto t = core::SelectionTable::parse(
      "* dpml 2 1\nbcast <=1024 binomial\nbcast * scatter-allgather\n");
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(2), 2, 4, opt);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = 4096;  // 16KB -> scatter-allgather entry
    a.inplace = true;
    co_await core::run_collective(CollKind::bcast, a, t);
  });
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Generic tuner

TEST(TunerRegistry, RegistryCandidatesCoverReduceDesigns) {
  const auto cands =
      core::registry_candidates(CollKind::reduce, 4, false, 256 * 1024);
  bool has_binomial = false, has_rsa = false, has_single = false;
  int dpml_variants = 0;
  for (const auto& c : cands) {
    if (c.algo == "binomial") has_binomial = true;
    if (c.algo == "rsa-gather") has_rsa = true;
    if (c.algo == "single-leader") has_single = true;
    if (c.algo == "dpml") ++dpml_variants;
  }
  EXPECT_TRUE(has_binomial);
  EXPECT_TRUE(has_rsa);
  EXPECT_TRUE(has_single);
  // Leader sweep {1,2,4,8,16} clamped to ppn=4 -> {1,2,4}; reduce-dpml has
  // no pipelined variants.
  EXPECT_EQ(dpml_variants, 3);
}

TEST(TunerRegistry, AllreduceCandidatesMatchLegacyDefaultCandidates) {
  for (std::size_t bytes : {512ul, 512ul * 1024ul}) {
    const auto legacy = core::default_candidates(28, true, bytes);
    const auto generic =
        core::registry_candidates(CollKind::allreduce, 28, true, bytes);
    ASSERT_EQ(legacy.size(), generic.size()) << bytes;
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(core::algorithm_name(legacy[i].algo), generic[i].algo);
      EXPECT_EQ(legacy[i].leaders, generic[i].leaders);
      EXPECT_EQ(legacy[i].pipeline_k, generic[i].pipeline_k);
    }
  }
}

TEST(TunerRegistry, TuneCollectivePicksAReduceWinner) {
  core::MeasureOptions opt;
  opt.iterations = 1;
  opt.warmup = 1;
  const auto r = core::tune_collective(CollKind::reduce, net::test_cluster(2),
                                       2, 2, 8192, opt);
  ASSERT_FALSE(r.all.empty());
  EXPECT_EQ(r.best.avg_us, r.all.front().avg_us);
  for (std::size_t i = 1; i < r.all.size(); ++i) {
    EXPECT_LE(r.all[i - 1].avg_us, r.all[i].avg_us);
  }
}

// ---------------------------------------------------------------------------
// Data-mode verification across kinds

TEST(DataMode, AllKindsVerifyBitExact) {
  core::MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 1;
  opt.warmup = 1;
  const auto cfg = net::test_cluster(4);
  struct Case {
    CollKind kind;
    const char* algo;
  };
  const Case cases[] = {
      {CollKind::allreduce, "dpml"},
      {CollKind::allreduce, "ring"},
      {CollKind::reduce, "dpml"},
      {CollKind::reduce, "rsa-gather"},
      {CollKind::bcast, "binomial"},
      {CollKind::bcast, "scatter-allgather"},
      {CollKind::alltoall, "bruck"},
      {CollKind::alltoall, "pairwise"},
  };
  for (const Case& c : cases) {
    CollSpec spec;
    spec.algo = c.algo;
    spec.leaders = 2;
    const auto r =
        core::measure_collective(c.kind, cfg, 4, 4, 4096, spec, opt);
    EXPECT_TRUE(r.verified)
        << coll::coll_kind_name(c.kind) << "/" << c.algo;
  }
}

TEST(DataMode, RootedKindsRespectNonZeroRoot) {
  core::MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 1;
  opt.warmup = 0;
  opt.root = 3;
  const auto cfg = net::test_cluster(2);
  for (const char* algo : {"binomial", "rsa-gather"}) {
    CollSpec spec;
    spec.algo = algo;
    const auto r =
        core::measure_collective(CollKind::reduce, cfg, 2, 4, 1024, spec, opt);
    EXPECT_TRUE(r.verified) << "reduce/" << algo;
  }
  CollSpec bspec;
  bspec.algo = "binomial";
  const auto rb =
      core::measure_collective(CollKind::bcast, cfg, 2, 4, 1024, bspec, opt);
  EXPECT_TRUE(rb.verified);
}

}  // namespace
}  // namespace dpml
