// Extension features: communication statistics, selection tables,
// multi-rail (multi-HCA) transport, and model-constant fitting.
#include <gtest/gtest.h>

#include "core/selection.hpp"
#include "model/fit.hpp"
#include "net/cluster.hpp"
#include "simmpi/machine.hpp"

namespace dpml {
namespace {

using simmpi::Machine;
using simmpi::Rank;

// ---------------------------------------------------------------------------
// Communication statistics

TEST(Stats, CountsPointToPointTraffic) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(2), 2, 2, opt);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(m.world(), 2, 0, 100);   // inter-node eager
      co_await r.send(m.world(), 1, 0, 50);    // intra-node
      co_await r.send(m.world(), 2, 1, 8192);  // inter-node rendezvous (>4K)
    } else if (r.world_rank() == 1) {
      co_await r.recv(m.world(), 0, 0, 50);
    } else if (r.world_rank() == 2) {
      co_await r.recv(m.world(), 0, 0, 100);
      co_await r.recv(m.world(), 0, 1, 8192);
    }
    co_return;
  });
  const auto& s = m.comm_stats();
  EXPECT_EQ(s.net_messages, 2u);
  EXPECT_EQ(s.net_bytes, 8292u);
  EXPECT_EQ(s.rndv_handshakes, 1u);
  EXPECT_EQ(s.shm_messages, 1u);
  EXPECT_EQ(s.shm_bytes, 50u);
}

TEST(Stats, RecursiveDoublingMessageCount) {
  // rd over p=2^k ranks: each rank sends lg p messages (plus the initial
  // local copy, which is not a message).
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::recursive_doubling;
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(8), 8, 1, opt);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = 16;
    a.inplace = true;
    co_await core::run_allreduce(a, spec);
  });
  EXPECT_EQ(m.comm_stats().net_messages, 8u * 3u);  // p * lg p
}

TEST(Stats, DpmlMovesLessNetDataThanFlat) {
  auto run = [](core::Algorithm algo) {
    core::AllreduceSpec spec;
    spec.algo = algo;
    spec.leaders = 4;
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(net::test_cluster(4), 4, 4, opt);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 64 * 1024;
      a.inplace = true;
      co_await core::run_allreduce(a, spec);
    });
    return m.comm_stats().net_bytes;
  };
  // Hierarchical designs put only the leaders on the fabric.
  EXPECT_LT(run(core::Algorithm::dpml),
            run(core::Algorithm::recursive_doubling));
}

TEST(Stats, NicUtilizationHigherUnderFlatAlgorithms) {
  auto run = [](core::Algorithm algo) {
    core::AllreduceSpec spec;
    spec.algo = algo;
    spec.leaders = 8;
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(net::cluster_b(), 4, 28, opt);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 128 * 1024;
      a.inplace = true;
      co_await core::run_allreduce(a, spec);
    });
    return m.avg_tx_utilization();
  };
  const double flat = run(core::Algorithm::reduce_scatter_allgather);
  const double dpml = run(core::Algorithm::dpml);
  EXPECT_GT(flat, 0.0);
  EXPECT_GT(dpml, 0.0);
  EXPECT_LE(dpml, 1.0);
}

// ---------------------------------------------------------------------------
// Selection tables

TEST(Selection, SelectRespectsThresholds) {
  core::SelectionTable::Entry small;
  small.max_bytes = 1024;
  small.spec.algo = "rd";
  core::SelectionTable::Entry mid;
  mid.max_bytes = 65536;
  mid.spec.algo = "dpml";
  mid.spec.leaders = 4;
  core::SelectionTable::Entry rest;
  rest.max_bytes = std::numeric_limits<std::size_t>::max();
  rest.spec.algo = "dpml";
  rest.spec.leaders = 16;
  core::SelectionTable t({small, mid, rest});
  EXPECT_EQ(t.select(4).algo, core::Algorithm::recursive_doubling);
  EXPECT_EQ(t.select(1024).algo, core::Algorithm::recursive_doubling);
  EXPECT_EQ(t.select(1025).leaders, 4);
  EXPECT_EQ(t.select(1 << 20).leaders, 16);
}

TEST(Selection, SerializeParseRoundTrip) {
  const std::string text =
      "# comment\n"
      "<=2048  sharp-socket-leader\n"
      "<=65536  dpml 8 1\n"
      "*  dpml 16 4\n";
  const auto t = core::SelectionTable::parse(text);
  ASSERT_EQ(t.entries().size(), 3u);
  EXPECT_EQ(t.select(100).algo, core::Algorithm::sharp_socket_leader);
  EXPECT_EQ(t.select(1 << 20).pipeline_k, 4);
  const auto again = core::SelectionTable::parse(t.serialize());
  EXPECT_EQ(again.entries().size(), t.entries().size());
  EXPECT_EQ(again.select(4096).leaders, 8);
}

TEST(Selection, RejectsMalformedTables) {
  EXPECT_THROW(core::SelectionTable::parse(""), util::InvariantError);
  EXPECT_THROW(core::SelectionTable::parse("<=100 dpml 4\n"),
               util::InvariantError);  // no catch-all
  EXPECT_THROW(core::SelectionTable::parse("<=100 nonsense\n* dpml 4\n"),
               util::InvariantError);
  EXPECT_THROW(core::SelectionTable::parse("<=200 dpml 2\n<=100 dpml 4\n"
                                           "* dpml 8\n"),
               util::InvariantError);  // descending thresholds
  EXPECT_THROW(core::SelectionTable::parse("100 dpml 4\n* dpml 8\n"),
               util::InvariantError);  // missing '<='
}

TEST(Selection, TunedTableIsOrderedAndUsable) {
  auto cfg = net::cluster_b();
  core::MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  const auto t = core::SelectionTable::tune(
      cfg, 8, 28, {256, 16384, 262144}, opt);
  ASSERT_FALSE(t.empty());
  // Larger probes should never select fewer leaders than the small probe.
  EXPECT_LE(t.select(64).leaders, t.select(262144).leaders);
}

TEST(Selection, DispatcherRunsThroughTable) {
  const auto t = core::SelectionTable::parse("<=1024 rd\n* dpml 4 1\n");
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(net::test_cluster(2), 2, 4, opt);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = 4096;  // 16KB -> dpml entry
    a.inplace = true;
    co_await core::run_allreduce(a, t);
  });
  SUCCEED();
}

TEST(Selection, FabriclessFallbackForSharpEntries) {
  const auto t = core::SelectionTable::parse("<=4096 sharp-node-leader\n"
                                             "* dpml 8 1\n");
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(net::cluster_b(), 2, 4, opt);  // no SHArP
  m.run([&](Rank& r) -> sim::CoTask<void> {
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = 16;  // small -> sharp entry -> must degrade gracefully
    a.inplace = true;
    co_await core::run_allreduce(a, t, nullptr);
  });
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Multi-rail

TEST(MultiRail, HcaMappingFollowsSockets) {
  Machine m1(net::cluster_b(), 1, 28);  // 1 HCA
  EXPECT_EQ(m1.hca_of_local(0), 0);
  EXPECT_EQ(m1.hca_of_local(27), 0);
  EXPECT_EQ(m1.node(0).num_hcas(), 1);

  Machine m2(net::with_rails(net::cluster_b(), 2), 1, 28);
  EXPECT_EQ(m2.node(0).num_hcas(), 2);
  EXPECT_EQ(m2.hca_of_local(0), 0);    // socket 0 -> rail 0
  EXPECT_EQ(m2.hca_of_local(13), 0);
  EXPECT_EQ(m2.hca_of_local(14), 1);   // socket 1 -> rail 1
  EXPECT_EQ(m2.hca_of_local(27), 1);
}

TEST(MultiRail, DoublesAggregateBandwidthForManyPairs) {
  // Senders span both sockets, so a second rail doubles the node's
  // injection capacity for link-bound traffic.
  auto aggregate = [](const net::ClusterConfig& cfg) {
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(cfg, 2, 8, opt);
    m.run([&](Rank& r) -> sim::CoTask<void> {
      const std::size_t bytes = 256 * 1024;
      if (r.node_id() == 0) {
        for (int i = 0; i < 8; ++i) {
          co_await r.send(m.world(), 8 + r.local_rank(), i, bytes);
        }
      } else {
        for (int i = 0; i < 8; ++i) {
          co_await r.recv(m.world(), r.local_rank(), i, bytes);
        }
      }
    });
    return 1.0 / sim::to_seconds(m.now());
  };
  const double single = aggregate(net::cluster_b());
  const double dual = aggregate(net::with_rails(net::cluster_b(), 2));
  EXPECT_GT(dual / single, 1.5);
  EXPECT_LT(dual / single, 2.2);
}

TEST(MultiRail, SpeedsUpDpmlLargeAllreduce) {
  auto lat = [](const net::ClusterConfig& cfg) {
    core::AllreduceSpec spec;
    spec.algo = core::Algorithm::dpml;
    spec.leaders = 16;
    core::MeasureOptions opt;
    opt.iterations = 2;
    opt.warmup = 1;
    return core::measure_allreduce(cfg, 8, 28, 1 << 20, spec, opt).avg_us;
  };
  const double single = lat(net::cluster_b());
  const double dual = lat(net::with_rails(net::cluster_b(), 2));
  EXPECT_LT(dual, single);
}

TEST(MultiRail, CollectivesRemainCorrect) {
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::dpml;
  spec.leaders = 4;
  core::MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 2;
  opt.warmup = 0;
  const auto r = core::measure_allreduce(
      net::with_rails(net::test_cluster(4), 2), 4, 4, 4096, spec, opt);
  EXPECT_TRUE(r.verified);
}

// ---------------------------------------------------------------------------
// Model-constant fitting

TEST(Fit, RecoversConfiguredConstants) {
  auto cfg = net::cluster_b();
  const auto f = model::fit_from_simulation(cfg);
  // a: o_send + o_recv + path + per-message costs; must be ~1-3us.
  EXPECT_GT(f.a, 0.5e-6);
  EXPECT_LT(f.a, 4e-6);
  // b: bounded by the per-process injection bandwidth.
  const double b_cfg = 1.0 / (cfg.nic.proc_bw * 1e9);
  EXPECT_NEAR(f.b, b_cfg, b_cfg * 0.5);
  // b': per-process shared-memory copy bandwidth.
  const double b2_cfg = 1.0 / (cfg.host.copy_bw * 1e9);
  EXPECT_NEAR(f.b2, b2_cfg, b2_cfg * 0.5);
  // c: host reduction cost.
  EXPECT_NEAR(f.c, cfg.host.reduce_ns_per_byte * 1e-9,
              cfg.host.reduce_ns_per_byte * 1e-9 * 0.5);
  // a' << a (the paper's §5.3 premise).
  EXPECT_LT(f.a2, f.a);
}

TEST(Fit, FittedModelPredictsLeaderBenefit) {
  auto cfg = net::cluster_b();
  const auto m1 = model::fitted_params(cfg, 16, 28, 1, 512 * 1024);
  const auto m16 = model::fitted_params(cfg, 16, 28, 16, 512 * 1024);
  EXPECT_GT(model::t_dpml(m1) / model::t_dpml(m16), 3.0);
}

}  // namespace
}  // namespace dpml
