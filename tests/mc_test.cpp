// Schedule explorer (src/mc/): default-oracle bit-identity with the plain
// engine, the planted schedule-sensitive mutant and its replayable
// counterexample, exhaustive passes over correct algorithms, trace JSON
// round-trips, and the structured wait-cycle format shared with simcheck.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "coll/coll.hpp"
#include "coll/registry.hpp"
#include "core/api.hpp"
#include "mc/affine.hpp"
#include "mc/explore.hpp"
#include "mc/probes.hpp"
#include "mc/trace.hpp"
#include "net/cluster.hpp"
#include "sim/oracle.hpp"
#include "simmpi/machine.hpp"
#include "util/error.hpp"

namespace dpml {
namespace {

// ---------------------------------------------------------------------------
// Golden: an oracle that always answers "canonical" must be bit-identical
// to running with no oracle at all — same results, same simulated time.

class CanonicalOracle final : public sim::ScheduleOracle {
 public:
  std::size_t choose(sim::ChoiceKind,
                     const std::vector<sim::ChoiceAlt>& alts) override {
    EXPECT_GE(alts.size(), 2u);
    ++calls_;
    return 0;
  }
  void note_wildcard_recv(int, int) override {}
  bool race_matters(int, int) override { return true; }
  void note_pruned(std::uint64_t) override {}
  std::uint64_t calls() const { return calls_; }

 private:
  std::uint64_t calls_ = 0;
};

struct GoldenRun {
  sim::Time final_time = 0;
  std::vector<std::vector<std::byte>> results;
};

GoldenRun run_allreduce(const std::string& algo, sim::ScheduleOracle* oracle) {
  constexpr int kNodes = 2;
  constexpr int kPpn = 2;
  constexpr std::size_t kCount = 8;
  net::ClusterConfig cluster = net::cluster_by_name("test");
  if (cluster.total_nodes < kNodes) cluster = net::with_nodes(cluster, kNodes);
  simmpi::RunOptions ropt;
  ropt.with_data = true;
  ropt.check_level = check::CheckLevel::strict;
  ropt.oracle = oracle;
  simmpi::Machine m(cluster, kNodes, kPpn, ropt);
  const int world = m.world_size();

  GoldenRun g;
  std::vector<std::vector<std::byte>> sendb(static_cast<std::size_t>(world));
  g.results.resize(static_cast<std::size_t>(world));
  for (int w = 0; w < world; ++w) {
    sendb[static_cast<std::size_t>(w)] =
        mc::affine_operand(simmpi::Dtype::i32, kCount, w);
    g.results[static_cast<std::size_t>(w)].resize(
        kCount * simmpi::dtype_size(simmpi::Dtype::i32));
  }
  coll::CollSpec spec;
  spec.algo = algo;
  m.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
    const auto w = static_cast<std::size_t>(r.world_rank());
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = kCount;
    a.dt = simmpi::Dtype::i32;
    a.op = mc::affine_op();
    a.send = sendb[w];
    a.recv = g.results[w];
    co_await core::run_collective(coll::CollKind::allreduce, a, spec);
  });
  g.final_time = m.now();
  return g;
}

TEST(McGolden, CanonicalOracleIsBitIdentical) {
  const GoldenRun plain = run_allreduce("rd", nullptr);
  CanonicalOracle oracle;
  const GoldenRun mc = run_allreduce("rd", &oracle);
  EXPECT_EQ(plain.final_time, mc.final_time);
  ASSERT_EQ(plain.results.size(), mc.results.size());
  for (std::size_t w = 0; w < plain.results.size(); ++w) {
    EXPECT_EQ(plain.results[w], mc.results[w]) << "rank " << w;
  }
}

TEST(McGolden, OracleRequiresChecking) {
  net::ClusterConfig cluster = net::cluster_by_name("test");
  CanonicalOracle oracle;
  simmpi::RunOptions ropt;
  ropt.check_level = check::CheckLevel::off;
  ropt.oracle = &oracle;
  EXPECT_THROW(simmpi::Machine(cluster, 1, 2, ropt), util::InvariantError);
}

// ---------------------------------------------------------------------------
// The planted mutant: mc-probe-arrival folds in arrival order, which only a
// non-canonical schedule exposes.

mc::McConfig probe_config(const std::string& algo, int np) {
  mc::McConfig cfg;
  cfg.kind = coll::CollKind::allreduce;
  cfg.algo = algo;
  cfg.nodes = np;
  cfg.ppn = 1;
  cfg.count = 4;
  return cfg;
}

TEST(McExplore, CanonicalScheduleHidesThePlantedBug) {
  mc::ensure_probe_algorithms();
  // Single-schedule checking (the status quo before the explorer) passes:
  // the canonical arrival order is ascending comm rank.
  const mc::Trace base = mc::run_schedule(
      mc::Trace{probe_config("mc-probe-arrival", 3), {}, {}, "", "", ""});
  EXPECT_EQ(base.failure_type, "") << base.failure_report;
}

TEST(McExplore, PlantedArrivalBugFoundWithinBudget) {
  mc::ensure_probe_algorithms();
  mc::McBudget budget;
  budget.max_schedules = 256;
  const mc::McOutcome out =
      mc::explore(probe_config("mc-probe-arrival", 3), budget);
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.stats.budget_exhausted);
  ASSERT_TRUE(out.counterexample.has_value());
  EXPECT_EQ(out.counterexample->failure_type, "check");
  EXPECT_FALSE(out.counterexample->failure_report.empty());
  // The counterexample is a genuine divergence from the canonical schedule.
  ASSERT_FALSE(out.counterexample->choices.empty());
  EXPECT_NE(out.counterexample->choices.back(), 0);
  // The probe's wildcard receives put rank 0's channel in the frozen set.
  EXPECT_FALSE(out.counterexample->wild.empty());
}

TEST(McExplore, CounterexampleReplaysToTheSameFailure) {
  mc::ensure_probe_algorithms();
  mc::McBudget budget;
  budget.max_schedules = 256;
  const mc::McOutcome out =
      mc::explore(probe_config("mc-probe-arrival", 3), budget);
  ASSERT_TRUE(out.counterexample.has_value());

  // Round-trip through the JSON wire format first: replay consumes traces
  // exactly as dpmlsim --mc-replay reads them off disk.
  const mc::Trace loaded = mc::parse_trace(mc::trace_json(*out.counterexample));
  const mc::Trace obs = mc::run_schedule(loaded);
  EXPECT_EQ(obs.failure_type, out.counterexample->failure_type);
  EXPECT_EQ(obs.choices, out.counterexample->choices);
  EXPECT_FALSE(obs.failure_report.empty());
}

TEST(McExplore, SortedTwinPassesExhaustively) {
  mc::ensure_probe_algorithms();
  mc::McBudget budget;
  budget.max_schedules = 512;
  const mc::McOutcome out =
      mc::explore(probe_config("mc-probe-sorted", 3), budget);
  EXPECT_TRUE(out.ok) << (out.counterexample.has_value()
                              ? out.counterexample->failure_report
                              : "");
  EXPECT_FALSE(out.stats.budget_exhausted);
  // The same races exist as in the arrival twin; they were all explored.
  EXPECT_GT(out.stats.schedules, 1u);
  EXPECT_GT(out.stats.choice_points, 0u);
}

TEST(McExplore, InTreeAllreduceExploresCleanAndPrunes) {
  mc::McConfig cfg;
  cfg.kind = coll::CollKind::allreduce;
  cfg.algo = "rd";
  cfg.nodes = 2;
  cfg.ppn = 2;
  cfg.count = 4;
  mc::McBudget budget;
  budget.max_schedules = 512;
  const mc::McOutcome out = mc::explore(cfg, budget);
  EXPECT_TRUE(out.ok) << (out.counterexample.has_value()
                              ? out.counterexample->failure_report
                              : "");
  // No wildcard receives -> same-instant delivery races are all equivalent;
  // the independence relation must prune them rather than branch.
  EXPECT_GT(out.stats.pruned, 0u);
  EXPECT_GT(out.stats.pruned_pct(), 0.0);
}

TEST(McExplore, ScheduleBudgetIsRespected) {
  mc::ensure_probe_algorithms();
  mc::McBudget budget;
  budget.max_schedules = 1;
  const mc::McOutcome out =
      mc::explore(probe_config("mc-probe-sorted", 3), budget);
  EXPECT_EQ(out.stats.schedules, 1u);
  EXPECT_TRUE(out.stats.budget_exhausted);
  EXPECT_TRUE(out.ok);  // nothing explored failed
}

// ---------------------------------------------------------------------------
// Trace wire format.

TEST(McTrace, JsonRoundTrips) {
  mc::Trace t;
  t.config.cluster = "test";
  t.config.nodes = 3;
  t.config.ppn = 2;
  t.config.kind = coll::CollKind::reduce_scatter;
  t.config.algo = "ring";
  t.config.count = 12;
  t.config.dt = simmpi::Dtype::i64;
  t.config.leaders = 3;
  t.config.root = 1;
  t.choices = {0, 2, 1};
  t.wild = {{0, 1}, {4, 2}};
  t.failure_type = "check";
  t.failure_report = "wrong \"result\"\nat rank 3";
  const mc::Trace r = mc::parse_trace(mc::trace_json(t));
  EXPECT_EQ(r.config.cluster, t.config.cluster);
  EXPECT_EQ(r.config.nodes, t.config.nodes);
  EXPECT_EQ(r.config.ppn, t.config.ppn);
  EXPECT_EQ(r.config.kind, t.config.kind);
  EXPECT_EQ(r.config.algo, t.config.algo);
  EXPECT_EQ(r.config.count, t.config.count);
  EXPECT_EQ(r.config.dt, t.config.dt);
  EXPECT_EQ(r.config.leaders, t.config.leaders);
  EXPECT_EQ(r.config.root, t.config.root);
  EXPECT_EQ(r.choices, t.choices);
  EXPECT_EQ(r.wild, t.wild);
  EXPECT_EQ(r.failure_type, t.failure_type);
  EXPECT_EQ(r.failure_report, t.failure_report);
}

TEST(McTrace, SaveAndLoadThroughAFile) {
  mc::Trace t;
  t.choices = {1};
  t.wild = {{0, 1}};
  const std::string path = ::testing::TempDir() + "mc_test_trace.json";
  mc::save_trace(t, path);
  const mc::Trace r = mc::load_trace(path);
  EXPECT_EQ(r.choices, t.choices);
  EXPECT_EQ(r.wild, t.wild);
  EXPECT_EQ(r.failure_type, "");
}

TEST(McTrace, ParseRejectsMalformedInput) {
  EXPECT_THROW(mc::parse_trace("not json"), util::InvariantError);
  EXPECT_THROW(mc::parse_trace("{}"), util::InvariantError);
  EXPECT_THROW(mc::parse_trace("{\"mc_trace\": 2}"), util::InvariantError);
}

// ---------------------------------------------------------------------------
// Structured wait-cycle reports (shared between simcheck deadlocks and mc
// counterexamples).

TEST(McDeadlockJson, ReportsEdgesAndTheCanonicalCycle) {
  std::vector<check::BlockedEdge> edges;
  edges.push_back({1, 0, 2, 7, 64});
  edges.push_back({2, 0, 1, 7, 64});
  const std::string j = check::deadlock_report_json(edges);
  EXPECT_NE(j.find("\"blocked\": ["), std::string::npos) << j;
  EXPECT_NE(j.find("{\"rank\": 1, \"ctx\": 0, \"src\": 2, \"tag\": 7, "
                   "\"capacity\": 64}"),
            std::string::npos)
      << j;
  EXPECT_NE(j.find("\"cycle\": [1, 2]"), std::string::npos) << j;
}

TEST(McDeadlockJson, WildcardSourcesAnchorNoCycle) {
  std::vector<check::BlockedEdge> edges;
  edges.push_back({0, 0, -1, 3, 16});  // could be satisfied by anyone
  edges.push_back({1, 0, 0, 3, 16});   // waits on 0, which waits on no one
  const std::string j = check::deadlock_report_json(edges);
  EXPECT_NE(j.find("\"cycle\": []"), std::string::npos) << j;
}

}  // namespace
}  // namespace dpml
