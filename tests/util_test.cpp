#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dpml::util {
namespace {

TEST(Rng, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsDiffer) {
  SplitMix64 a(42, 0);
  SplitMix64 b(42, 1);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInInclusive) {
  SplitMix64 rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Stats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({1.0, 0.0}), 0.0);
}

TEST(Table, PrintsAlignedAndCsv) {
  Table t({"size", "latency"});
  t.row().cell(std::size_t{1024}).cell(3.14159, 2);
  t.row().cell(std::string("big")).cell(std::size_t{7});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("size"), std::string::npos);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("1024,3.14"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), InvariantError);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(4), "4");
  EXPECT_EQ(format_bytes(1024), "1K");
  EXPECT_EQ(format_bytes(64 * 1024), "64K");
  EXPECT_EQ(format_bytes(1 << 20), "1M");
  EXPECT_EQ(format_bytes(1536), "1536");  // non-multiple stays raw
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(3.2e-9), "3.20ns");
  EXPECT_EQ(format_seconds(4.5e-6), "4.50us");
  EXPECT_EQ(format_seconds(7.25e-3), "7.25ms");
  EXPECT_EQ(format_seconds(2.0), "2.00s");
}

TEST(Check, ThrowsWithMessage) {
  try {
    DPML_CHECK_MSG(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("numbers disagree"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dpml::util
