// Extension bench (paper §8 future work): applying the multi-leader /
// shared-memory treatment to other collectives. Compares the registered
// rooted-reduce and broadcast designs on cluster B at 16x28, with the
// candidate set coming straight from the collective registry (the same
// sweep the tuner uses).
//
// Expected shapes: binomial wins small messages; for large messages the
// bandwidth-optimal flat designs (rsa-gather / scatter-allgather) beat
// binomial, and the hierarchical designs beat flat at full subscription for
// the same NIC-pressure reason as allreduce; DPML-reduce adds the
// parallel-compute advantage on top.
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/tuner.hpp"
#include "net/cluster.hpp"

namespace {

using namespace dpml;

double latency_us(core::CollKind kind, const net::ClusterConfig& cfg,
                  int nodes, int ppn, std::size_t bytes,
                  const core::CollSpec& spec) {
  core::MeasureOptions opt;
  opt.iterations = 1;
  opt.warmup = 1;
  opt.with_data = false;
  return core::measure_collective(kind, cfg, nodes, ppn, bytes, spec, opt)
      .avg_us;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = net::cluster_b();
  const int nodes = 16;
  const int ppn = 28;
  static benchx::SeriesStore reduce_store;
  static benchx::SeriesStore bcast_store;

  struct Series {
    core::CollKind kind;
    const char* tag;
    benchx::SeriesStore* store;
  };
  const Series series[] = {
      {core::CollKind::reduce, "ext-reduce", &reduce_store},
      {core::CollKind::bcast, "ext-bcast", &bcast_store},
  };

  for (std::size_t bytes : benchx::paper_sizes()) {
    const std::string row = util::format_bytes(bytes);
    for (const Series& s : series) {
      for (const core::CollSpec& cand :
           core::registry_candidates(s.kind, ppn, cfg.has_sharp(), bytes)) {
        const std::string label = cand.label(s.kind);
        benchx::register_point(
            std::string(s.tag) + "/bytes:" + row + "/" + label, *s.store, row,
            label, [=]() {
              return latency_us(s.kind, cfg, nodes, ppn, bytes, cand);
            });
      }
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  reduce_store.print(
      "Extension — MPI_Reduce designs, latency (us), cluster B, 16x28",
      "msg size");
  bcast_store.print(
      "Extension — MPI_Bcast designs, latency (us), cluster B, 16x28",
      "msg size");
  return rc;
}
