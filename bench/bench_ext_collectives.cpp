// Extension bench (paper §8 future work): applying the multi-leader /
// shared-memory treatment to other collectives. Compares rooted-reduce and
// broadcast designs on cluster B at 16x28.
//
// Expected shapes: binomial wins small messages; for large messages the
// bandwidth-optimal flat designs (rsa-gather / scatter-allgather) beat
// binomial, and the hierarchical designs beat flat at full subscription for
// the same NIC-pressure reason as allreduce; DPML-reduce adds the
// parallel-compute advantage on top.
#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_common.hpp"
#include "coll/bcast.hpp"
#include "coll/reduce.hpp"
#include "net/cluster.hpp"
#include "simmpi/machine.hpp"

namespace {

using namespace dpml;

// Latency of one rooted reduce with the given design.
double reduce_latency_us(const net::ClusterConfig& cfg, int nodes, int ppn,
                         std::size_t bytes, coll::ReduceAlgo algo,
                         int leaders) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  simmpi::Machine m(cfg, nodes, ppn, opt);
  m.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
    coll::ReduceArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.root = 0;
    a.count = bytes / 4;
    a.inplace = true;
    coll::DpmlParams dp;
    dp.leaders = leaders;
    co_await coll::reduce(a, algo, dp);
  });
  return sim::to_us(m.now());
}

double bcast_latency_us(const net::ClusterConfig& cfg, int nodes, int ppn,
                        std::size_t bytes, coll::BcastAlgo algo) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  simmpi::Machine m(cfg, nodes, ppn, opt);
  m.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
    coll::BcastArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.root = 0;
    a.bytes = bytes;
    co_await coll::bcast(a, algo);
  });
  return sim::to_us(m.now());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = net::cluster_b();
  const int nodes = 16;
  const int ppn = 28;
  static benchx::SeriesStore reduce_store;
  static benchx::SeriesStore bcast_store;

  struct RAlgo {
    const char* label;
    coll::ReduceAlgo algo;
    int leaders;
  };
  const RAlgo ralgos[] = {
      {"binomial", coll::ReduceAlgo::binomial, 1},
      {"rsa-gather", coll::ReduceAlgo::rsa_gather, 1},
      {"single-leader", coll::ReduceAlgo::single_leader, 1},
      {"dpml(l=8)", coll::ReduceAlgo::dpml, 8},
      {"dpml(l=16)", coll::ReduceAlgo::dpml, 16},
  };
  struct BAlgo {
    const char* label;
    coll::BcastAlgo algo;
  };
  const BAlgo balgos[] = {
      {"binomial", coll::BcastAlgo::binomial},
      {"scatter-allgather", coll::BcastAlgo::scatter_allgather},
      {"single-leader", coll::BcastAlgo::single_leader},
  };

  for (std::size_t bytes : benchx::paper_sizes()) {
    const std::string row = util::format_bytes(bytes);
    for (const RAlgo& ra : ralgos) {
      benchx::register_point(
          std::string("ext-reduce/bytes:") + row + "/" + ra.label,
          reduce_store, row, ra.label, [=]() {
            return reduce_latency_us(cfg, nodes, ppn, bytes, ra.algo,
                                     ra.leaders);
          });
    }
    for (const BAlgo& ba : balgos) {
      benchx::register_point(
          std::string("ext-bcast/bytes:") + row + "/" + ba.label, bcast_store,
          row, ba.label, [=]() {
            return bcast_latency_us(cfg, nodes, ppn, bytes, ba.algo);
          });
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  reduce_store.print(
      "Extension — MPI_Reduce designs, latency (us), cluster B, 16x28",
      "msg size");
  bcast_store.print(
      "Extension — MPI_Bcast designs, latency (us), cluster B, 16x28",
      "msg size");
  return rc;
}
