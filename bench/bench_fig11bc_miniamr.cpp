// Figure 11(b,c): miniAMR overall mesh-refinement time with the proposed
// design vs the library baselines, on cluster C (Xeon + Omni-Path) and
// cluster D (KNL + Omni-Path).
//
// Expected shape (paper §6.6): the refinement phase is dominated by
// medium/large allreduces, so the proposed design wins — up to ~40% over
// MVAPICH2-like and ~20% over IntelMPI-like on C; up to ~60% and ~20%
// respectively on D.
#include "apps/miniamr.hpp"
#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

namespace {

using namespace dpml;

struct Panel {
  const char* name;
  net::ClusterConfig cfg;
  int nodes;
  int ppn;
  benchx::SeriesStore store;
};

}  // namespace

int main(int argc, char** argv) {
  Panel panels[] = {
      {"Fig 11(b) cluster C (Xeon+Omni-Path)", net::cluster_c(), 16, 28, {}},
      {"Fig 11(c) cluster D (KNL+Omni-Path)", net::cluster_d(), 16, 64, {}},
  };
  struct Entry {
    const char* label;
    core::Algorithm algo;
  };
  const Entry entries[] = {
      {"proposed", core::Algorithm::dpml_auto},
      {"mvapich2", core::Algorithm::mvapich2},
      {"intelmpi", core::Algorithm::intelmpi},
  };
  const int block_counts[] = {8, 32, 64};  // refinement vector sizes

  for (Panel& p : panels) {
    for (int blocks : block_counts) {
      for (const Entry& e : entries) {
        const std::string row = std::to_string(blocks) + " blocks/rank";
        benchx::register_point(
            std::string("fig11bc/") + p.cfg.name + "/blocks:" +
                std::to_string(blocks) + "/" + e.label,
            p.store, row, e.label, [&p, blocks, e]() {
              apps::MiniAmrOptions o;
              o.nodes = p.nodes;
              o.ppn = p.ppn;
              o.refine_steps = 10;
              o.blocks_per_rank = blocks;
              o.spec.algo = e.algo;
              return apps::run_miniamr(p.cfg, o).refine_s * 1e6;  // us
            });
      }
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  for (Panel& p : panels) {
    p.store.print(std::string(p.name) +
                      " — miniAMR mesh refinement time (us), 10 steps, " +
                      std::to_string(p.nodes) + " nodes x " +
                      std::to_string(p.ppn) + " ppn",
                  "mesh size");
    const double base = p.store.at("64 blocks/rank", "mvapich2");
    const double ours = p.store.at("64 blocks/rank", "proposed");
    std::cout << "\nrefinement improvement vs mvapich2 (64 blocks/rank): "
              << (1.0 - ours / base) * 100.0 << "%\n";
  }
  return rc;
}
