// Adaptive re-planning under contention (src/adapt, docs/MODEL.md §12).
//
// The selection tables the tuner ships are measured on a pristine, solo
// cluster; PR 9's multi-tenant fabric showed how badly such a plan can age
// once the fabric is shared. This study closes the loop and measures the
// payoff: a 4-node allreduce subject job (ring, 256KB — the static plan a
// solo tuner would pick) runs round-robin-interleaved with a co-tenant
// allreduce while seeded background traffic ramps from 0 to 80% of edge
// bandwidth, once with static selection and once with --adapt re-planning
// (ring flips to the multi-channel cring under observed contention). A
// final row fails an ECMP way mid-run with no recovery: the failure event
// marks plans stale and the next iteration re-plans on the degraded fabric.
//
// Expected shape: even at bg=0 the interleaved co-tenant is real contention
// (round-robin makes the jobs share edge links — that is the point of the
// placement axis), so the adaptive column already re-plans and wins ~1.2x;
// the gap widens to ~2.7x at 80% load and ~3.2x under the way failure,
// where the static ring's one flow per hop is starved by the max-min
// allocator while cring's channels claim a proportionally larger aggregate
// share. The level-0-no-op guarantee (adaptive ≡ static when the fabric is
// genuinely quiet) is golden-locked by tests/adapt_test.cpp on the
// block-placed default mix, where no links are shared.
//
// Every cell is a deterministic function of (cluster, jobs, options):
// tables are byte-identical across --jobs widths and reruns.
//
// --smoke: two loads on the test cluster only.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "net/cluster.hpp"
#include "tenant/tenant.hpp"

namespace {

using namespace dpml;

struct AcFlags {
  std::string perf_json;
};

AcFlags strip_ac_flags(int& argc, char** argv) {
  AcFlags f;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--perf-json" && i + 1 < argc) {
      f.perf_json = argv[++i];
    } else if (a.rfind("--perf-json=", 0) == 0) {
      f.perf_json = a.substr(12);
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;
  return f;
}

struct Row {
  std::string label;
  double bg_load = 0.0;
  bool fail = false;
};

struct Config {
  std::vector<net::ClusterConfig> clusters;
  std::vector<Row> rows;
  int ppn = 2;
  int iterations = 6;
  bool smoke = false;
};

Config make_config(bool smoke) {
  Config c;
  c.smoke = smoke;
  c.clusters.push_back(net::test_cluster(8));
  if (smoke) {
    c.rows = {{"bg=0.0", 0.0, false}, {"bg=0.5 + fail", 0.5, true}};
    c.iterations = 2;
    return c;
  }
  // Cluster D: 2-node leaves, 2 ECMP ways, oversubscribed core — the preset
  // where losing a way genuinely halves cross-leaf capacity.
  c.clusters.push_back(net::cluster_by_name("D"));
  c.rows = {{"bg=0.0", 0.0, false}, {"bg=0.2", 0.2, false},
            {"bg=0.4", 0.4, false}, {"bg=0.6", 0.6, false},
            {"bg=0.8", 0.8, false}, {"bg=0.5 + fail", 0.5, true}};
  return c;
}

// The subject: the plan a solo tuner would pick for a 256KB allreduce. Under
// contention the adaptive column re-plans it to multi-channel cring.
tenant::JobSpec subject_job(int iterations) {
  tenant::JobSpec j;
  j.name = "subject";
  j.kind = coll::CollKind::allreduce;
  j.algo = "ring";
  j.nodes = 4;
  j.bytes = 262144;
  j.iterations = iterations;
  return j;
}

tenant::JobSpec cotenant_job(int iterations) {
  tenant::JobSpec j;
  j.name = "tenant";
  j.kind = coll::CollKind::allreduce;
  j.algo = "ring";
  j.nodes = 4;
  j.bytes = 262144;
  j.iterations = iterations;
  return j;
}

tenant::TrafficSpec bg_traffic(double load) {
  tenant::TrafficSpec t;
  t.matrix = tenant::Matrix::uniform;
  t.load = load;
  t.bytes = 262144;
  return t;
}

// Fail an ECMP way mid-run with no recovery: the rest of the run executes
// on the degraded fabric, and adaptive runs re-plan on the failure event.
tenant::FailSpec mid_run_failure() {
  tenant::FailSpec f;
  tenant::FailSpec::Event e;
  e.way = 0;
  e.leaf = -1;
  e.at_us = 400.0;
  e.recover_us = 0.0;
  f.events.push_back(e);
  return f;
}

// Per-point tenant results, committed by slot index so the post-run perf
// aggregate is independent of executor scheduling.
std::vector<tenant::TenantResult> result_slots;
std::atomic<std::size_t> next_slot{0};

// One bench cell: the subject job's shared-run makespan in microseconds
// (jobs[0] is always the subject).
double subject_makespan(const net::ClusterConfig& cfg, int ppn,
                        const std::vector<tenant::JobSpec>& jobs,
                        const tenant::TenantOptions& opt, std::size_t slot) {
  const tenant::TenantResult r = tenant::run_tenants(cfg, ppn, jobs, opt);
  result_slots[slot] = r;
  return r.jobs.front().makespan_us;
}

bool write_perf_json(const std::string& path, int points, int jobs,
                     double wall_ms) {
  std::uint64_t events = 0;
  std::uint64_t flows = 0;
  std::uint64_t bg_flows = 0;
  double max_util = 0.0;
  for (const tenant::TenantResult& r : result_slots) {
    events += r.events;
    flows += r.flows;
    bg_flows += r.bg_flows;
    max_util = std::max(max_util, r.max_link_util);
  }
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n"
     << "  \"tool\": \"bench_adapt_contention\",\n"
     << "  \"placement\": \"round-robin\",\n"
     << "  \"adapt\": true,\n"
     << "  \"points\": " << points << ",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"events_per_sec\": "
     << (wall_ms > 0.0
             ? static_cast<long long>(static_cast<double>(events) /
                                      (wall_ms / 1e3))
             : 0)
     << ",\n"
     << "  \"fabric\": true,\n"
     << "  \"max_link_util\": " << max_util << ",\n"
     << "  \"fabric_flows\": " << flows << ",\n"
     << "  \"bg_flows\": " << bg_flows << ",\n"
     << "  \"wall_ms\": " << wall_ms << "\n"
     << "}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const benchx::BenchFlags bf = benchx::strip_common_flags(argc, argv);
  const AcFlags af = strip_ac_flags(argc, argv);
  const Config c = make_config(bf.smoke);

  benchx::SeriesStore latency;   // subject makespan (us)
  benchx::SeriesStore speedup;   // static makespan / adaptive makespan

  const std::size_t total_points = c.clusters.size() * c.rows.size() * 2;
  result_slots.assign(total_points, tenant::TenantResult{});

  // Slot layout: [cluster][row][0=static, 1=adaptive].
  std::size_t slot_base = 0;
  for (const net::ClusterConfig& cfg : c.clusters) {
    for (const Row& row : c.rows) {
      for (int adapt = 0; adapt < 2; ++adapt) {
        const std::size_t slot = slot_base++;
        const std::string col =
            cfg.name + (adapt != 0 ? " adaptive" : " static");
        benchx::register_point(
            "adapt_contention/" + cfg.name + "/" + row.label + "/" +
                (adapt != 0 ? "adaptive" : "static"),
            latency, row.label, col, [&c, &cfg, &bf, row, adapt, slot]() {
              std::vector<tenant::JobSpec> jobs;
              jobs.push_back(subject_job(c.iterations));
              jobs.push_back(cotenant_job(c.iterations));
              tenant::TenantOptions opt;
              opt.seed = 1;
              opt.stagger_max_us = 20.0;
              opt.placement = tenant::Placement::round_robin;
              opt.adapt = adapt != 0;
              if (bf.time_only) opt.data_mode = sim::DataMode::timeonly;
              if (row.bg_load > 0.0) opt.traffic = bg_traffic(row.bg_load);
              if (row.fail) opt.failures = mid_run_failure();
              return subject_makespan(cfg, c.ppn, jobs, opt, slot);
            });
      }
    }
  }

  const auto wall_start =
      std::chrono::steady_clock::now();  // dpmllint: allow(wall-clock)
  const int rc = benchx::run_benchmarks(argc, argv);
  const auto wall_end =
      std::chrono::steady_clock::now();  // dpmllint: allow(wall-clock)
  const double wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();

  std::cout << "\nAdaptive re-planning study: 4-node allreduce subject "
               "(256KB ring static plan) + co-tenant, round-robin placement, "
               "ppn "
            << c.ppn << "\n";
  latency.print(
      "subject makespan (us): static selection vs --adapt re-planning",
      "background", 2);

  // Derived speedup table and the headline claim: adaptive must beat static
  // from 40% background load on.
  bool wins_at_heavy_load = true;
  for (std::size_t ci = 0; ci < c.clusters.size(); ++ci) {
    const net::ClusterConfig& cfg = c.clusters[ci];
    for (std::size_t ri = 0; ri < c.rows.size(); ++ri) {
      const std::size_t slot = (ci * c.rows.size() + ri) * 2;
      const double st = result_slots[slot].jobs.front().makespan_us;
      const double ad = result_slots[slot + 1].jobs.front().makespan_us;
      speedup.put(c.rows[ri].label, cfg.name, ad > 0.0 ? st / ad : 0.0);
      if (cfg.name == "D" && (c.rows[ri].bg_load >= 0.4 || c.rows[ri].fail) &&
          !(ad < st)) {
        wins_at_heavy_load = false;
      }
    }
  }
  speedup.print("adaptive speedup (static makespan / adaptive makespan)",
                "background", 3);
  if (!c.smoke) {
    std::cout << "\nadaptive beats static on cluster D at every bg load >= "
                 "0.4 and under failure: "
              << (wins_at_heavy_load ? "yes" : "NO") << "\n";
  }

  std::uint64_t bg_total = 0;
  int shared_max = 0;
  for (const tenant::TenantResult& r : result_slots) {
    bg_total += r.bg_flows;
    shared_max = std::max(shared_max, r.shared_links);
  }
  std::cout << "\n" << result_slots.size() << " tenant mixes, " << bg_total
            << " background flows injected, up to " << shared_max
            << " links shared by both jobs\n";

  if (!af.perf_json.empty()) {
    if (!write_perf_json(af.perf_json,
                         static_cast<int>(result_slots.size()),
                         core::default_jobs(), wall_ms)) {
      std::cerr << "cannot write perf json " << af.perf_json << "\n";
      return 1;
    }
    std::cout << "perf counters written to " << af.perf_json << "\n";
  }
  return !wins_at_heavy_load && !c.smoke ? 1 : rc;
}
