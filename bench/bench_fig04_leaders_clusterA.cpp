// Figure 4: leader-count sweep at 448 processes on cluster A (16 nodes,
// 28 ppn, Xeon + EDR InfiniBand).
#include "bench/leader_sweep.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  return dpml::benchx::run_leader_sweep("Fig 4", dpml::net::cluster_a(), 16,
                                        28, argc, argv);
}
