// Figure 7: leader-count sweep at 1,024 processes on cluster D (32 nodes,
// 32 ppn, KNL + Omni-Path).
#include "bench/leader_sweep.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  return dpml::benchx::run_leader_sweep("Fig 7", dpml::net::cluster_d(), 32,
                                        32, argc, argv);
}
