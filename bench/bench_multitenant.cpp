// Multi-tenant fabric study (src/tenant, docs/MODEL.md §11).
//
// The paper benchmarks each collective with the machine to itself; this
// study asks what happens to a bandwidth-bound probe job when it has to
// share the fabric. A 4-node alltoall (64KB blocks, the most
// fabric-sensitive pattern in the registry) runs against increasing
// co-tenant pressure:
//   1. degradation curve: probe slowdown (shared makespan / solo makespan)
//      as seeded background traffic ramps from 0 to 80% of per-node edge
//      bandwidth, with one co-tenant allreduce job always present, and
//   2. tenancy configs: probe slowdown for 1/2/3 concurrent jobs, then
//      2 jobs plus background load, then the same with an ECMP-way failure
//      and recovery mid-run.
//
// Expected shape: at low background load the probe hides contention in its
// latency slack and the slowdown stays ~1.0; past ~50% load the max-min
// allocator visibly squeezes the probe's flows and the curve turns up
// (~2x at 80%). Block-placed co-tenant jobs alone barely move the probe
// (disjoint node sets share no edge links; cross-leaf ways are per-leaf),
// which is itself the point: on this fabric, *traffic*, not job count, is
// what hurts — so the failure rows, which thin the core under load, hurt
// most on the oversubscribed 2-way cluster D.
//
// Every cell is a deterministic function of (cluster, jobs, options):
// tables are byte-identical across --jobs widths and reruns.
//
// --smoke: probe + one config per store on the test cluster only.
#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "net/cluster.hpp"
#include "tenant/tenant.hpp"

namespace {

using namespace dpml;

struct MtFlags {
  std::string perf_json;
};

MtFlags strip_mt_flags(int& argc, char** argv) {
  MtFlags f;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--perf-json" && i + 1 < argc) {
      f.perf_json = argv[++i];
    } else if (a.rfind("--perf-json=", 0) == 0) {
      f.perf_json = a.substr(12);
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;
  return f;
}

struct Config {
  std::vector<net::ClusterConfig> clusters;
  std::vector<double> bg_loads;  // degradation-curve x axis (0 = idle)
  int ppn = 2;
  int iterations = 3;
  bool smoke = false;
};

Config make_config(bool smoke) {
  Config c;
  c.smoke = smoke;
  c.clusters.push_back(net::test_cluster(8));
  if (smoke) {
    c.bg_loads = {0.0, 0.5};
    c.iterations = 2;
    return c;
  }
  // Cluster D: 2-node leaves, 2 ECMP ways, 1.25:1 oversubscribed core — the
  // preset where a way failure genuinely halves cross-leaf capacity.
  c.clusters.push_back(net::cluster_by_name("D"));
  c.bg_loads = {0.0, 0.2, 0.5, 0.8};
  return c;
}

// The probe: bandwidth-bound enough that fabric contention, not endpoint
// serialization, sets its makespan.
tenant::JobSpec probe_job(int nodes, int iterations) {
  tenant::JobSpec j;
  j.name = "probe";
  j.kind = coll::CollKind::alltoall;
  j.algo = "auto";
  j.nodes = nodes;
  j.bytes = 65536;
  j.iterations = iterations;
  return j;
}

tenant::JobSpec cotenant_job(int index, int nodes, int iterations) {
  tenant::JobSpec j;
  j.name = "tenant" + std::to_string(index);
  j.kind = coll::CollKind::allreduce;
  j.algo = "ring";
  j.nodes = nodes;
  j.bytes = 262144;
  j.iterations = iterations;
  return j;
}

tenant::TrafficSpec bg_traffic(double load) {
  tenant::TrafficSpec t;
  t.matrix = tenant::Matrix::uniform;
  t.load = load;
  t.bytes = 262144;
  return t;
}

// Per-point tenant results, committed by slot index so the post-run perf
// aggregate is independent of executor scheduling.
std::vector<tenant::TenantResult> result_slots;
std::atomic<std::size_t> next_slot{0};

// One bench cell: run the mix, record the full result, report the probe's
// slowdown (jobs[0] is always the probe).
double probe_slowdown(const net::ClusterConfig& cfg, int ppn,
                      const std::vector<tenant::JobSpec>& jobs,
                      const tenant::TenantOptions& opt, std::size_t slot) {
  const tenant::TenantResult r = tenant::run_tenants(cfg, ppn, jobs, opt);
  result_slots[slot] = r;
  return r.jobs.front().slowdown;
}

bool write_perf_json(const std::string& path, int points, int jobs,
                     double wall_ms) {
  std::uint64_t events = 0;
  std::uint64_t flows = 0;
  std::uint64_t bg_flows = 0;
  double max_util = 0.0;
  for (const tenant::TenantResult& r : result_slots) {
    events += r.events;
    flows += r.flows;
    bg_flows += r.bg_flows;
    max_util = std::max(max_util, r.max_link_util);
  }
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n"
     << "  \"tool\": \"bench_multitenant\",\n"
     << "  \"points\": " << points << ",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"events_per_sec\": "
     << (wall_ms > 0.0
             ? static_cast<long long>(static_cast<double>(events) /
                                      (wall_ms / 1e3))
             : 0)
     << ",\n"
     << "  \"fabric\": true,\n"
     << "  \"max_link_util\": " << max_util << ",\n"
     << "  \"fabric_flows\": " << flows << ",\n"
     << "  \"bg_flows\": " << bg_flows << ",\n"
     << "  \"wall_ms\": " << wall_ms << "\n"
     << "}\n";
  return true;
}

std::string load_row(double load) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "bg=%.1f", load);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const benchx::BenchFlags bf = benchx::strip_common_flags(argc, argv);
  const MtFlags mf = strip_mt_flags(argc, argv);
  const Config c = make_config(bf.smoke);

  tenant::TenantOptions base;
  base.seed = 1;
  base.stagger_max_us = 20.0;
  if (bf.time_only) base.data_mode = sim::DataMode::timeonly;

  // Store 1: probe slowdown vs background (co-tenant) load, one co-tenant
  // job always present. Store 2: probe slowdown vs tenancy configuration.
  benchx::SeriesStore degradation;
  benchx::SeriesStore configs;

  // (label, jobs builder, bg load, fail) rows for the config store.
  struct ConfigRow {
    std::string label;
    int cotenants;
    double bg_load;
    bool fail;
  };
  std::vector<ConfigRow> rows;
  if (c.smoke) {
    rows = {{"1 job", 0, 0.0, false},
            {"2 jobs + bg=0.5 + fail", 1, 0.5, true}};
  } else {
    rows = {{"1 job", 0, 0.0, false},
            {"2 jobs", 1, 0.0, false},
            {"3 jobs", 2, 0.0, false},
            {"2 jobs + bg=0.5", 1, 0.5, false},
            {"2 jobs + bg=0.5 + fail", 1, 0.5, true}};
  }

  const std::size_t total_points =
      c.clusters.size() * (c.bg_loads.size() + rows.size());
  result_slots.assign(total_points, tenant::TenantResult{});

  for (const net::ClusterConfig& cfg : c.clusters) {
    const std::string col = "cluster " + cfg.name;
    for (double load : c.bg_loads) {
      const std::size_t slot = next_slot++;
      benchx::register_point(
          "multitenant/" + cfg.name + "/" + load_row(load), degradation,
          load_row(load), col, [&c, &cfg, load, slot]() {
            std::vector<tenant::JobSpec> jobs;
            jobs.push_back(probe_job(4, c.iterations));
            jobs.push_back(cotenant_job(1, 4, c.iterations));
            tenant::TenantOptions opt;
            opt.seed = 1;
            if (load > 0.0) opt.traffic = bg_traffic(load);
            return probe_slowdown(cfg, c.ppn, jobs, opt, slot);
          });
    }
    for (const ConfigRow& row : rows) {
      const std::size_t slot = next_slot++;
      benchx::register_point(
          "multitenant/" + cfg.name + "/" + row.label, configs, row.label,
          col, [&c, &cfg, row, slot]() {
            // 3 jobs shrink to 2-node blocks so the mix fits 8 nodes.
            const int cot_nodes = row.cotenants > 1 ? 2 : 4;
            std::vector<tenant::JobSpec> jobs;
            jobs.push_back(probe_job(4, c.iterations));
            for (int i = 1; i <= row.cotenants; ++i) {
              jobs.push_back(cotenant_job(i, cot_nodes, c.iterations));
            }
            tenant::TenantOptions opt;
            opt.seed = 1;
            if (row.bg_load > 0.0) opt.traffic = bg_traffic(row.bg_load);
            if (row.fail) opt.failures = tenant::FailSpec::default_spec();
            return probe_slowdown(cfg, c.ppn, jobs, opt, slot);
          });
    }
  }

  const auto wall_start =
      std::chrono::steady_clock::now();  // dpmllint: allow(wall-clock)
  const int rc = benchx::run_benchmarks(argc, argv);
  const auto wall_end =
      std::chrono::steady_clock::now();  // dpmllint: allow(wall-clock)
  const double wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();

  std::cout << "\nMulti-tenant fabric study: 4-node alltoall probe (64KB "
               "blocks, ppn "
            << c.ppn << ") vs co-tenant pressure\n";
  degradation.print(
      "probe slowdown vs background load (shared / solo makespan, one "
      "co-tenant job present)",
      "bg load", 3);
  configs.print("probe slowdown vs tenancy configuration", "config", 3);

  std::uint64_t bg_total = 0;
  for (const tenant::TenantResult& r : result_slots) bg_total += r.bg_flows;
  std::cout << "\n" << result_slots.size() << " tenant mixes, "
            << bg_total << " background flows injected\n";

  if (!mf.perf_json.empty()) {
    if (!write_perf_json(mf.perf_json,
                         static_cast<int>(result_slots.size()),
                         core::default_jobs(), wall_ms)) {
      std::cerr << "cannot write perf json " << mf.perf_json << "\n";
      return 1;
    }
    std::cout << "perf counters written to " << mf.perf_json << "\n";
  }
  return rc;
}
