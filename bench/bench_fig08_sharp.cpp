// Figure 8: SHArP-based designs vs the host-based default on cluster A with
// 16 nodes, at (a) 1, (b) 4, and (c) 28 processes per node, for the small
// message range where in-network aggregation applies.
//
// Expected shapes (paper §6.3): SHArP ~2.5x faster at ppn=1 for tiny
// messages; the advantage shrinks with size, and the host-based design wins
// by 4KB. With multiple processes per node the socket-leader design beats
// the node-leader design (no cross-socket gather/broadcast).
#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

namespace {

using namespace dpml;

struct Panel {
  const char* name;
  int ppn;
  benchx::SeriesStore store;
};

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = net::cluster_a();
  const int nodes = 16;
  Panel panels[] = {
      {"Fig 8(a) ppn=1", 1, {}},
      {"Fig 8(b) ppn=4", 4, {}},
      {"Fig 8(c) ppn=28 (full subscription)", 28, {}},
  };
  const std::size_t sizes[] = {4, 16, 64, 256, 1024, 2048, 4096};

  struct Design {
    const char* label;
    core::Algorithm algo;
  };
  const Design designs[] = {
      {"host-based", core::Algorithm::mvapich2},
      {"node-leader", core::Algorithm::sharp_node_leader},
      {"socket-leader", core::Algorithm::sharp_socket_leader},
  };

  for (Panel& p : panels) {
    for (std::size_t bytes : sizes) {
      for (const Design& d : designs) {
        core::AllreduceSpec spec;
        spec.algo = d.algo;
        const std::string name = std::string("fig08/ppn:") +
                                 std::to_string(p.ppn) + "/bytes:" +
                                 util::format_bytes(bytes) + "/" + d.label;
        benchx::register_point(name, p.store, util::format_bytes(bytes),
                               d.label, [&cfg, &p, bytes, spec]() {
                                 return benchx::latency_us(cfg, 16, p.ppn,
                                                           bytes, spec);
                               });
      }
    }
  }
  (void)nodes;

  const int rc = benchx::run_benchmarks(argc, argv);
  for (const Panel& p : panels) {
    p.store.print(std::string(p.name) +
                      " — MPI_Allreduce latency (us), 16 nodes, cluster A",
                  "msg size");
  }
  const double host4 = panels[0].store.at("4", "host-based");
  const double sharp4 = panels[0].store.at("4", "node-leader");
  std::cout << "\n4B speedup at ppn=1 (SHArP vs host): " << host4 / sharp4
            << "x (paper: up to 2.5x)\n";
  return rc;
}
