// Process-arrival-pattern (PAP) imbalance study.
//
// Real applications never enter a collective simultaneously: Faraj/Yuan and
// Proficz measured tens-of-microseconds arrival skew dominating small-message
// collective cost. This bench sweeps uniform arrival skew over the allreduce
// designs and reports, per message size:
//   1. absolute latency vs skew, and
//   2. relative degradation T_skew / T_0 (each design against its own
//      clean baseline).
//
// Expected shape (the Proficz-style finding): in the small/medium-message
// regime where the flat designs (recursive doubling, binomial) are the
// baseline-fastest choice, they lose the most *relative* performance as skew
// grows — the added wait is roughly the worst straggler's offset for every
// design, which is a much larger fraction of a short flat run than of a
// multi-leader DPML run. Multi-leader DPML both closes the absolute gap and
// degrades more gracefully, which is the robustness argument for
// hierarchical designs under realistic arrival patterns.
//
// --smoke: tiny shape (test cluster, 4x4) for CI.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "net/cluster.hpp"
#include "perturb/spec.hpp"

namespace {

using namespace dpml;

struct Config {
  net::ClusterConfig cfg;
  int nodes = 8;
  int ppn = 28;
  std::vector<std::size_t> sizes;
  std::vector<double> skews_us;       // 0 first: the clean baseline
  std::vector<core::AllreduceSpec> designs;
  int reps = 5;
  int iterations = 3;
};

core::AllreduceSpec design(core::Algorithm algo, int leaders = 1) {
  core::AllreduceSpec s;
  s.algo = algo;
  s.leaders = leaders;
  return s;
}

Config make_config(bool smoke) {
  Config c;
  if (smoke) {
    c.cfg = net::test_cluster(4);
    c.nodes = 4;
    c.ppn = 4;
    c.sizes = {256, 1024};
    c.skews_us = {0.0, 25.0};
    c.designs = {design(core::Algorithm::recursive_doubling),
                 design(core::Algorithm::binomial),
                 design(core::Algorithm::single_leader),
                 design(core::Algorithm::dpml, 2),
                 design(core::Algorithm::dpml, 4)};
    c.reps = 2;
    c.iterations = 2;
    return c;
  }
  c.cfg = net::cluster_b();
  c.sizes = {64, 256, 1024, 4096, 16384};
  c.skews_us = {0.0, 10.0, 25.0, 50.0};
  c.designs = {design(core::Algorithm::recursive_doubling),
               design(core::Algorithm::binomial),
               design(core::Algorithm::single_leader),
               design(core::Algorithm::dpml, 1),
               design(core::Algorithm::dpml, 4),
               design(core::Algorithm::dpml, 16)};
  return c;
}

double skewed_latency(const Config& c, std::size_t bytes,
                      const core::AllreduceSpec& spec, double skew_us) {
  core::MeasureOptions opt;
  opt.iterations = c.iterations;
  opt.warmup = 1;
  opt.repetitions = c.reps;
  if (skew_us > 0.0) {
    opt.perturb = perturb::PerturbSpec::parse(
        "skew=uniform:max_us=" + std::to_string(skew_us) + ";seed=7");
  }
  return core::measure_allreduce(c.cfg, c.nodes, c.ppn, bytes, spec, opt)
      .avg_us;
}

std::string skew_row(double skew_us) {
  return "skew " + std::to_string(static_cast<int>(skew_us)) + "us";
}

}  // namespace

int main(int argc, char** argv) {
  const Config c = make_config(benchx::strip_common_flags(argc, argv).smoke);
  // One latency store per message size: rows = skew level, cols = design.
  std::vector<benchx::SeriesStore> stores(c.sizes.size());

  for (std::size_t si = 0; si < c.sizes.size(); ++si) {
    const std::size_t bytes = c.sizes[si];
    for (double skew : c.skews_us) {
      for (const core::AllreduceSpec& spec : c.designs) {
        const std::string name = "pap/bytes:" + util::format_bytes(bytes) +
                                 "/skew:" +
                                 std::to_string(static_cast<int>(skew)) +
                                 "us/" + spec.label();
        benchx::register_point(name, stores[si], skew_row(skew), spec.label(),
                               [&c, bytes, spec, skew]() {
                                 return skewed_latency(c, bytes, spec, skew);
                               });
      }
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);

  std::cout << "\nPAP imbalance study on cluster " << c.cfg.name << ", "
            << c.nodes << "x" << c.ppn << " (" << c.reps
            << " noise realizations per point)\n";
  const std::string clean = skew_row(0.0);
  const std::string worst = skew_row(c.skews_us.back());
  for (std::size_t si = 0; si < c.sizes.size(); ++si) {
    const std::string size = util::format_bytes(c.sizes[si]);
    stores[si].print("PAP " + size + " — allreduce latency (us) vs arrival "
                     "skew", "arrival skew");

    // Relative degradation: each design against its own clean baseline.
    benchx::SeriesStore ratio;
    for (double skew : c.skews_us) {
      if (skew == 0.0) continue;
      for (const core::AllreduceSpec& spec : c.designs) {
        ratio.put(skew_row(skew), spec.label(),
                  stores[si].at(skew_row(skew), spec.label()) /
                      stores[si].at(clean, spec.label()));
      }
    }
    ratio.print("PAP " + size + " — degradation ratio T_skew / T_0",
                "arrival skew");

    const auto& flat = c.designs.front();                 // rd
    const auto& dpml_best = c.designs.back();             // largest leader count
    const double flat_loss =
        stores[si].at(worst, flat.label()) / stores[si].at(clean, flat.label());
    const double dpml_loss = stores[si].at(worst, dpml_best.label()) /
                             stores[si].at(clean, dpml_best.label());
    std::cout << "\n" << size << " @ " << c.skews_us.back() << "us max skew: "
              << flat.label() << " degrades " << flat_loss << "x vs "
              << dpml_best.label() << " " << dpml_loss << "x"
              << (flat_loss > dpml_loss
                      ? " — flat design loses more under arrival skew\n"
                      : " — multi-leader loses more at this size\n");
  }
  return rc;
}
