// Shared driver for Figures 4-7: MPI_Allreduce latency with different
// numbers of DPML leaders, against the MVAPICH2-like default.
//
// Expected shape (paper §6.2): below ~1KB extra leaders do not help (and can
// hurt slightly); for medium and large messages more leaders win, with
// ~4-5x at 512KB for 16 leaders vs 1.
//
// Flags: --smoke shrinks the shape and size sweep for CI; --jobs N fans the
// fully independent points across host threads (tables stay byte-identical).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

namespace dpml::benchx {

inline int run_leader_sweep(const std::string& figure,
                            const net::ClusterConfig& cfg, int nodes, int ppn,
                            int argc, char** argv) {
  const BenchFlags flags = strip_common_flags(argc, argv);
  const int use_nodes = flags.smoke ? std::min(nodes, 4) : nodes;
  const int use_ppn = flags.smoke ? std::min(ppn, 8) : ppn;
  std::vector<std::size_t> sizes = paper_sizes();
  if (flags.smoke) sizes = {4, 1024, 65536, 524288};

  static SeriesStore store;
  const int leader_counts[] = {1, 2, 4, 8, 16};

  for (std::size_t bytes : sizes) {
    for (int l : leader_counts) {
      core::AllreduceSpec spec;
      spec.algo = core::Algorithm::dpml;
      spec.leaders = l;
      const std::string name = figure + "/bytes:" + util::format_bytes(bytes) +
                               "/leaders:" + std::to_string(l);
      register_point(name, store, util::format_bytes(bytes),
                     "l=" + std::to_string(l), [=]() {
                       return latency_us(cfg, use_nodes, use_ppn, bytes, spec);
                     });
    }
    core::AllreduceSpec mv;
    mv.algo = core::Algorithm::mvapich2;
    register_point(figure + "/bytes:" + util::format_bytes(bytes) + "/mvapich2",
                   store, util::format_bytes(bytes), "mvapich2", [=]() {
                     return latency_us(cfg, use_nodes, use_ppn, bytes, mv);
                   });
  }

  const int rc = run_benchmarks(argc, argv);
  store.print(figure + " — MPI_Allreduce latency (us), " +
                  std::to_string(use_nodes) + " nodes x " +
                  std::to_string(use_ppn) + " ppn, cluster " + cfg.name,
              "msg size");
  const double l1 = store.at("512K", "l=1");
  const double l16 = store.at("512K", "l=16");
  std::cout << "\n512KB speedup, 16 leaders vs 1: " << l1 / l16
            << "x (paper: ~4.9x on B, ~4.3x on C)\n";
  return rc;
}

}  // namespace dpml::benchx
