// CommBench-style pattern sweep: every registered collective kind on every
// cluster preset in one command.
//
// For each preset (A-D) the driver measures a representative design of each
// of the nine CollKinds over a message-size sweep: allreduce uses the
// paper's tuned "dpml-auto" stack, reduce_scatter and allgather use their
// DPML multi-leader variants, and every other kind uses its library-style
// "auto" dispatch. One table (rows = sizes, columns = kinds) prints per
// cluster, plus CSV.
//
// Flags beyond the common bench set (--smoke, --time-only, --jobs N):
//   --data             data mode with bit-exact per-kind verification
//                      (implied by --smoke unless --time-only; failures fail
//                      the run)
//   --perturb SPEC     machine perturbations, e.g. "jitter=lognormal:sigma=0.2"
//   --fabric[=links]   flow-level congested fabric
//   --check[=basic|strict]  simcheck MPI-semantics verification
//   --perf-json FILE   write aggregate host-perf counters (events/sec, peak
//                      live events, pool hit rates) as JSON — the format of
//                      the checked-in BENCH_perf.json trajectory snapshot
#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

namespace {

using namespace dpml;

struct PatternFlags {
  bool data = false;
  std::string perturb;
  std::string check;
  std::string fabric;
  std::string perf_json;
};

// Strip the bench_patterns-specific flags before google-benchmark parses
// argv. Bare --check means basic, bare --fabric means links (both also take
// a space- or =-separated value, dpmlsim-style).
PatternFlags strip_pattern_flags(int& argc, char** argv) {
  PatternFlags f;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_value = [&](const char* fallback) -> std::string {
      if (i + 1 < argc && argv[i + 1][0] != '-') return argv[++i];
      return fallback;
    };
    if (a == "--data") {
      f.data = true;
    } else if (a == "--check") {
      f.check = next_value("basic");
    } else if (a.rfind("--check=", 0) == 0) {
      f.check = a.substr(8);
    } else if (a == "--fabric") {
      f.fabric = next_value("links");
    } else if (a.rfind("--fabric=", 0) == 0) {
      f.fabric = a.substr(9);
    } else if (a == "--perturb") {
      f.perturb = next_value("");
    } else if (a.rfind("--perturb=", 0) == 0) {
      f.perturb = a.substr(10);
    } else if (a == "--perf-json") {
      f.perf_json = next_value("");
    } else if (a.rfind("--perf-json=", 0) == 0) {
      f.perf_json = a.substr(12);
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;
  return f;
}

// Representative design per kind: the tuned allreduce stack, the DPML
// multi-leader variants where data partitioning applies, the library-style
// auto dispatch everywhere else.
core::CollSpec spec_for(core::CollKind kind) {
  core::CollSpec s;
  s.leaders = 4;
  switch (kind) {
    case core::CollKind::allreduce:
      s.algo = "dpml-auto";
      break;
    case core::CollKind::reduce_scatter:
    case core::CollKind::allgather:
      s.algo = "dpml";
      break;
    default:
      s.algo = "auto";
      break;
  }
  return s;
}

// Per-point perf results, committed by slot index so the post-run aggregate
// is independent of executor scheduling.
std::vector<core::MeasurePerf> perf_slots;
std::atomic<int> verify_failures{0};

bool write_perf_json(const std::string& path, int points, int jobs,
                     const std::string& data_mode) {
  std::uint64_t events = 0;
  std::uint64_t peak_live = 0;
  std::uint64_t peak_queue = 0;
  std::uint64_t peak_rss = 0;
  std::uint64_t elided = 0;
  double wall_ms = 0.0, cb_hits = 0.0, pl_hits = 0.0;
  for (const core::MeasurePerf& p : perf_slots) {
    events += p.events;
    peak_live = std::max(peak_live, p.peak_live_events);
    peak_queue = std::max(peak_queue, p.peak_queue_depth);
    peak_rss = std::max(peak_rss, p.peak_rss_kb);
    elided += p.elided_bytes;
    wall_ms += p.wall_ms;
    cb_hits += p.callback_pool_hit_rate;
    pl_hits += p.payload_pool_hit_rate;
  }
  const double n = perf_slots.empty()
                       ? 1.0
                       : static_cast<double>(perf_slots.size());
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n"
     << "  \"tool\": \"bench_patterns\",\n"
     << "  \"data_mode\": \"" << data_mode << "\",\n"
     << "  \"points\": " << points << ",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"events_per_sec\": "
     << (wall_ms > 0.0
             ? static_cast<long long>(static_cast<double>(events) /
                                      (wall_ms / 1e3))
             : 0)
     << ",\n"
     << "  \"peak_live_events\": " << peak_live << ",\n"
     << "  \"peak_queue_depth\": " << peak_queue << ",\n"
     << "  \"peak_rss_kb\": " << peak_rss << ",\n"
     << "  \"elided_bytes\": " << elided << ",\n"
     << "  \"callback_pool_hit_rate\": " << cb_hits / n << ",\n"
     << "  \"payload_pool_hit_rate\": " << pl_hits / n << ",\n"
     << "  \"wall_ms\": " << wall_ms << "\n"
     << "}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const benchx::BenchFlags bf = benchx::strip_common_flags(argc, argv);
  const PatternFlags pf = strip_pattern_flags(argc, argv);

  core::MeasureOptions opt = benchx::default_opts();
  opt.with_data = (pf.data || bf.smoke) && !bf.time_only;
  if (bf.time_only) {
    if (pf.data || !pf.check.empty()) {
      std::cerr << "bench_patterns: incompatible flags: --time-only with "
                << (pf.data ? "--data" : "--check")
                << "; the time-only plane has no payload to verify — drop "
                   "one of the flags\n";
      return 1;
    }
    opt.data_mode = sim::DataMode::timeonly;
  }
  opt.perturb = perturb::PerturbSpec::parse(pf.perturb);
  if (!opt.perturb.empty()) opt.repetitions = 2;
  if (!pf.check.empty()) opt.check = check::check_level_by_name(pf.check);
  if (!pf.fabric.empty())
    opt.fabric = fabric::fabric_level_by_name(pf.fabric);

  // Smoke keeps CI fast but still covers every kind on every preset, with a
  // non-power-of-two node count so the ragged-partition paths run.
  const int nodes = bf.smoke ? 3 : 8;
  const std::vector<std::size_t> sizes =
      bf.smoke ? std::vector<std::size_t>{256, 16384}
               : std::vector<std::size_t>{4, 256, 4096, 65536, 1048576};

  const std::vector<net::ClusterConfig> cfgs = net::all_clusters();
  static std::vector<benchx::SeriesStore> stores;
  stores.resize(cfgs.size());

  int slot = 0;
  for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
    const net::ClusterConfig cfg = cfgs[ci];
    const int ppn = bf.smoke ? std::min(4, cfg.max_ppn()) : cfg.max_ppn();
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const std::size_t bytes = sizes[si];
      const std::string row = util::format_bytes(bytes);
      for (core::CollKind kind : coll::kAllCollKinds) {
        // Barrier moves no data; one point per cluster is the whole story.
        if (kind == core::CollKind::barrier && si != 0) continue;
        const core::CollSpec spec = spec_for(kind);
        const std::string col = coll::coll_kind_name(kind);
        const int my_slot = slot++;
        benchx::register_point(
            "patterns/" + cfg.name + "/" + col + "/bytes:" + row, stores[ci],
            row, col, [=]() {
              const core::MeasureResult r = core::measure_collective(
                  kind, cfg, nodes, ppn, bytes, spec, opt);
              benchx::note_measure_perf(r);
              perf_slots[static_cast<std::size_t>(my_slot)] = r.perf;
              if (!r.verified) {
                ++verify_failures;
                std::cerr << "VERIFY FAIL: " << cfg.name << " " << col << "/"
                          << spec.algo << " bytes=" << bytes << "\n";
              }
              return r.avg_us;
            });
      }
    }
  }
  perf_slots.resize(static_cast<std::size_t>(slot));

  const int rc = benchx::run_benchmarks(argc, argv);
  for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
    const int ppn = bf.smoke ? std::min(4, cfgs[ci].max_ppn())
                             : cfgs[ci].max_ppn();
    stores[ci].print("Pattern sweep — cluster " + cfgs[ci].name + ", " +
                         std::to_string(nodes) + "x" + std::to_string(ppn) +
                         " (latency us)",
                     "msg size");
  }
  if (!pf.perf_json.empty()) {
    if (!write_perf_json(pf.perf_json, slot, core::default_jobs(),
                         sim::data_mode_name(opt.data_mode))) {
      std::cerr << "cannot write perf json " << pf.perf_json << "\n";
      return 1;
    }
    std::cout << "\nperf counters written to " << pf.perf_json << "\n";
  }
  if (verify_failures.load() > 0) {
    std::cerr << verify_failures.load() << " verification failure(s)\n";
    return 1;
  }
  return rc;
}
