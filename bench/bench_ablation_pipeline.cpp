// Ablation: DPML-Pipelined sub-partition depth k (paper §4.2).
//
// On an Omni-Path-like fabric, very large per-leader partitions sit in Zone
// C where extra concurrency does not add bandwidth; pipelining the
// inter-node phase into k non-blocking sub-allreduces overlaps per-chunk
// latency and compute across recursive-doubling steps. Expected shape:
// k>1 helps once the per-leader partition is large (multi-MB inputs), and
// is neutral-to-harmful for small partitions (extra startup, Eq. 5).
#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  using namespace dpml;
  const auto cfg = net::cluster_c();
  const int nodes = 16;
  const int ppn = 28;
  static benchx::SeriesStore store;

  for (std::size_t bytes : {262144ul, 1048576ul, 4194304ul, 16777216ul}) {
    for (int l : {4, 16}) {
      for (int k : {1, 2, 4, 8, 16}) {
        core::AllreduceSpec spec;
        spec.algo = core::Algorithm::dpml;
        spec.leaders = l;
        spec.pipeline_k = k;
        const std::string row =
            util::format_bytes(bytes) + " l=" + std::to_string(l);
        benchx::register_point(
            std::string("ablation/bytes:") + util::format_bytes(bytes) +
                "/l:" + std::to_string(l) + "/k:" + std::to_string(k),
            store, row, "k=" + std::to_string(k), [=]() {
              return benchx::latency_us(cfg, nodes, ppn, bytes, spec);
            });
      }
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  store.print("Ablation — DPML-Pipelined depth k, latency (us), cluster C, "
              "16x28",
              "config");
  return rc;
}
