// Figure 11(a): HPCG DDOT timing with the SHArP-based designs on cluster A
// at 56, 224, and 448 processes (28 ppn; weak scaling).
//
// Expected shape (paper §6.5): node-leader and socket-leader SHArP designs
// improve DDOT time over the host-based scheme (up to ~35% at 56 procs),
// with the percentage shrinking as the process count grows (the allreduce
// count argument is fixed, so reduction time matters relatively less).
#include "apps/hpcg.hpp"
#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  using namespace dpml;
  const auto cfg = net::cluster_a();
  static benchx::SeriesStore store;

  struct Design {
    const char* label;
    core::Algorithm algo;
  };
  const Design designs[] = {
      {"host-based", core::Algorithm::mvapich2},
      {"node-leader", core::Algorithm::sharp_node_leader},
      {"socket-leader", core::Algorithm::sharp_socket_leader},
  };
  const int node_counts[] = {2, 8, 16};  // 56, 224, 448 procs at 28 ppn

  for (int nodes : node_counts) {
    for (const Design& d : designs) {
      const std::string row = std::to_string(nodes * 28) + " procs";
      benchx::register_point(
          std::string("fig11a/procs:") + std::to_string(nodes * 28) + "/" +
              d.label,
          store, row, d.label, [=]() {
            apps::HpcgOptions o;
            o.nodes = nodes;
            o.ppn = 28;
            o.iterations = 25;
            // Small local problem: the DDOT is allreduce-dominated, as in
            // the paper's timing breakdown.
            o.rows_per_rank = 8 * 8 * 8;
            o.spec.algo = d.algo;
            return apps::run_hpcg(cfg, o).ddot_s * 1e6;  // us
          });
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  store.print("Fig 11(a) — HPCG total DDOT time (us), 25 CG iterations, "
              "cluster A, 28 ppn",
              "job size");
  for (int nodes : node_counts) {
    const std::string row = std::to_string(nodes * 28) + " procs";
    const double host = store.at(row, "host-based");
    const double sock = store.at(row, "socket-leader");
    std::cout << "DDOT improvement at " << row << " (socket-leader): "
              << (1.0 - sock / host) * 100.0 << "%\n";
  }
  std::cout << "(paper: up to 35% at 56 procs, ~10% at 224; see "
               "EXPERIMENTS.md for the scaling-trend deviation)\n";
  return rc;
}
