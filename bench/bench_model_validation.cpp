// Section 5 model validation: analytical DPML cost (Eq. 7) against the
// simulator, per leader count and message size, on cluster B.
//
// Expected shape: model and simulation agree closely where contention is
// light (small leader counts); the simulator reads higher as leader counts
// grow because the model ignores NIC/memory-pipe sharing (§5.3 discusses
// only the uncontended costs). Both predict the same optimal-leader trend.
#include "bench/bench_common.hpp"
#include "model/model.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  using namespace dpml;
  const auto cfg = net::cluster_b();
  const int nodes = 16;
  const int ppn = 28;
  static benchx::SeriesStore store;

  for (std::size_t bytes : {4096ul, 65536ul, 524288ul, 1048576ul}) {
    for (int l : {1, 2, 4, 8, 16}) {
      const std::string row =
          util::format_bytes(bytes) + " l=" + std::to_string(l);
      benchx::register_point(
          std::string("model/bytes:") + util::format_bytes(bytes) +
              "/l:" + std::to_string(l) + "/analytical",
          store, row, "model Eq.7 (us)", [=]() {
            return model::t_dpml(
                       model::from_cluster(cfg, nodes, ppn, l, bytes)) *
                   1e6;
          });
      core::AllreduceSpec spec;
      spec.algo = core::Algorithm::dpml;
      spec.leaders = l;
      spec.inter = coll::InterAlgo::recursive_doubling;  // Eq (4) assumes rd
      benchx::register_point(
          std::string("model/bytes:") + util::format_bytes(bytes) +
              "/l:" + std::to_string(l) + "/simulated",
          store, row, "simulated (us)", [=]() {
            return benchx::latency_us(cfg, nodes, ppn, bytes, spec);
          });
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  store.print("Model validation — Eq. (7) vs simulator, cluster B, 16x28",
              "config");
  return rc;
}
