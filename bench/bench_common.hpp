// Shared infrastructure for the figure-reproduction benches.
//
// Every bench binary does two things:
//   1. registers google-benchmark entries whose reported time is the
//      *simulated* latency (manual time, one deterministic iteration), and
//   2. after the run, prints the paper-figure table (rows = message sizes,
//      columns = configurations) plus a CSV block, built from the results
//      collected while the benchmarks executed.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/measure.hpp"
#include "core/tuner.hpp"
#include "util/table.hpp"

namespace dpml::benchx {

// The paper's microbenchmark x-axis: 4B .. 1MB in 4x steps.
inline std::vector<std::size_t> paper_sizes() {
  return {4,     16,    64,     256,    1024,   4096,
          16384, 65536, 262144, 524288, 1048576};
}

inline core::MeasureOptions default_opts() {
  core::MeasureOptions o;
  o.iterations = 3;
  o.warmup = 1;
  return o;
}

// Ordered (row x column) -> value store filled during benchmark execution.
class SeriesStore {
 public:
  void put(const std::string& row, const std::string& col, double v) {
    if (values_.emplace(std::make_pair(row, col), v).second) {
      if (row_index_.emplace(row, rows_.size()).second) rows_.push_back(row);
      if (col_index_.emplace(col, cols_.size()).second) cols_.push_back(col);
    } else {
      values_[std::make_pair(row, col)] = v;
    }
  }

  bool empty() const { return values_.empty(); }

  double at(const std::string& row, const std::string& col) const {
    return values_.at(std::make_pair(row, col));
  }

  // Aligned table plus CSV, both to stdout.
  void print(const std::string& title, const std::string& row_header,
             int precision = 2) const {
    std::vector<std::string> header{row_header};
    header.insert(header.end(), cols_.begin(), cols_.end());
    util::Table t(header);
    for (const auto& row : rows_) {
      t.row().cell(row);
      for (const auto& col : cols_) {
        auto it = values_.find(std::make_pair(row, col));
        if (it == values_.end()) {
          t.cell(std::string("-"));
        } else {
          t.cell(it->second, precision);
        }
      }
    }
    std::cout << "\n## " << title << "\n\n";
    t.print(std::cout);
    std::cout << "\n### CSV\n";
    t.print_csv(std::cout);
  }

 private:
  std::map<std::pair<std::string, std::string>, double> values_;
  std::vector<std::string> rows_;
  std::vector<std::string> cols_;
  std::map<std::string, std::size_t> row_index_;
  std::map<std::string, std::size_t> col_index_;
};

// Register a single-iteration manual-time benchmark that evaluates `fn`
// (microseconds of simulated time) and records it in `store`.
inline void register_point(const std::string& name, SeriesStore& store,
                           const std::string& row, const std::string& col,
                           std::function<double()> fn) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [&store, row, col, fn](benchmark::State& st) {
        const double us = fn();
        for (auto _ : st) {
          st.SetIterationTime(us * 1e-6);
        }
        store.put(row, col, us);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMicrosecond);
}

// Convenience: latency of one allreduce spec (microseconds).
inline double latency_us(const net::ClusterConfig& cfg, int nodes, int ppn,
                         std::size_t bytes, const core::AllreduceSpec& spec) {
  return core::measure_allreduce(cfg, nodes, ppn, bytes, spec, default_opts())
      .avg_us;
}

inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace dpml::benchx
