// Shared infrastructure for the figure-reproduction benches.
//
// Every bench binary does two things:
//   1. registers benchmark points whose reported time is the *simulated*
//      latency (manual time, one deterministic iteration), and
//   2. after the run, prints the paper-figure table (rows = message sizes,
//      columns = configurations) plus a CSV block.
//
// Points are registered lazily: run_benchmarks() first evaluates every
// pending point through the deterministic sweep executor (--jobs N /
// DPML_JOBS fan the fully independent simulations across host threads;
// values land in pre-sized slots, so the tables are byte-identical to a
// serial run), then hands google-benchmark entries that simply report the
// precomputed values. A host-side perf summary (points, jobs, wall time,
// aggregate simulated events/sec) is printed after the figure tables.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/measure.hpp"
#include "core/tuner.hpp"
#include "util/table.hpp"

namespace dpml::benchx {

// The paper's microbenchmark x-axis: 4B .. 1MB in 4x steps.
inline std::vector<std::size_t> paper_sizes() {
  return {4,     16,    64,     256,    1024,   4096,
          16384, 65536, 262144, 524288, 1048576};
}

inline core::MeasureOptions default_opts() {
  core::MeasureOptions o;
  o.iterations = 3;
  o.warmup = 1;
  return o;
}

// Ordered (row x column) -> value store filled during benchmark execution.
class SeriesStore {
 public:
  void put(const std::string& row, const std::string& col, double v) {
    if (values_.emplace(std::make_pair(row, col), v).second) {
      if (row_index_.emplace(row, rows_.size()).second) rows_.push_back(row);
      if (col_index_.emplace(col, cols_.size()).second) cols_.push_back(col);
    } else {
      values_[std::make_pair(row, col)] = v;
    }
  }

  bool empty() const { return values_.empty(); }

  double at(const std::string& row, const std::string& col) const {
    return values_.at(std::make_pair(row, col));
  }

  // Aligned table plus CSV, both to stdout.
  void print(const std::string& title, const std::string& row_header,
             int precision = 2) const {
    std::vector<std::string> header{row_header};
    header.insert(header.end(), cols_.begin(), cols_.end());
    util::Table t(header);
    for (const auto& row : rows_) {
      t.row().cell(row);
      for (const auto& col : cols_) {
        auto it = values_.find(std::make_pair(row, col));
        if (it == values_.end()) {
          t.cell(std::string("-"));
        } else {
          t.cell(it->second, precision);
        }
      }
    }
    std::cout << "\n## " << title << "\n\n";
    t.print(std::cout);
    std::cout << "\n### CSV\n";
    t.print_csv(std::cout);
  }

 private:
  std::map<std::pair<std::string, std::string>, double> values_;
  std::vector<std::string> rows_;
  std::vector<std::string> cols_;
  std::map<std::string, std::size_t> row_index_;
  std::map<std::string, std::size_t> col_index_;
};

// Flags shared by every bench driver but unknown to google-benchmark.
// strip_common_flags removes them from argv before Initialize sees them:
//   --smoke        tiny CI shape (driver-interpreted)
//   --time-only    payload-free data plane (driver-interpreted; simulated
//                  latencies are bit-identical, host memory/time shrink)
//   --jobs N       sweep-executor width (also --jobs=N; sets the process
//                  default, so every measure() call fans its reps out too)
struct BenchFlags {
  bool smoke = false;
  bool time_only = false;
};

inline BenchFlags strip_common_flags(int& argc, char** argv) {
  BenchFlags flags;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      flags.smoke = true;
    } else if (std::strcmp(argv[i], "--time-only") == 0) {
      flags.time_only = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      core::set_default_jobs(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      core::set_default_jobs(std::atoi(argv[i] + 7));
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;
  return flags;
}

// A benchmark point waiting for the executor pass in run_benchmarks().
struct PendingPoint {
  std::string name;
  SeriesStore* store;
  std::string row;
  std::string col;
  std::function<double()> fn;
};

inline std::vector<PendingPoint>& pending_points() {
  static std::vector<PendingPoint> points;
  return points;
}

// Simulated engine events accumulated by the measure helpers below; feeds
// the events/sec line of the perf summary. Atomic: points run concurrently.
inline std::atomic<std::uint64_t>& sim_event_counter() {
  static std::atomic<std::uint64_t> events{0};
  return events;
}

// High-water mark of any point's event-queue backlog (EnginePerf
// peak_queue_depth), maximized across all points. Atomic for the same
// reason.
inline std::atomic<std::uint64_t>& sim_queue_depth_peak() {
  static std::atomic<std::uint64_t> depth{0};
  return depth;
}

// Fold one measurement's perf counters into the process-wide bench
// aggregates (events sum, queue-depth max).
inline void note_measure_perf(const core::MeasureResult& r) {
  sim_event_counter() += r.events;
  std::uint64_t seen = sim_queue_depth_peak().load();
  while (seen < r.perf.peak_queue_depth &&
         !sim_queue_depth_peak().compare_exchange_weak(
             seen, r.perf.peak_queue_depth)) {
  }
}

// Register a single-iteration manual-time benchmark point that evaluates
// `fn` (microseconds of simulated time) and records it in `store`.
// Evaluation is deferred to run_benchmarks(), which fans all pending points
// across the sweep executor before google-benchmark reports them.
inline void register_point(const std::string& name, SeriesStore& store,
                           const std::string& row, const std::string& col,
                           std::function<double()> fn) {
  pending_points().push_back({name, &store, row, col, std::move(fn)});
}

// Convenience: latency of one allreduce spec (microseconds).
inline double latency_us(const net::ClusterConfig& cfg, int nodes, int ppn,
                         std::size_t bytes, const core::AllreduceSpec& spec) {
  const core::MeasureResult r =
      core::measure_allreduce(cfg, nodes, ppn, bytes, spec, default_opts());
  note_measure_perf(r);
  return r.avg_us;
}

inline int run_benchmarks(int argc, char** argv) {
  // Drivers that interpret --smoke strip it themselves (idempotent); this
  // catches --jobs for the drivers that pass argv straight through.
  strip_common_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  // Evaluate every pending point through the sweep executor: each point is
  // an independent deterministic simulation committed into its own slot, so
  // the values (and every table built from them) are byte-identical to the
  // serial order for any --jobs width.
  std::vector<PendingPoint>& points = pending_points();
  const core::Executor executor;
  sim_event_counter() = 0;
  // Host-side wall clock for the events/sec perf line, not simulated time.
  const auto wall_start =
      std::chrono::steady_clock::now();  // dpmllint: allow(wall-clock)
  const std::vector<double> values = executor.map<double>(
      points.size(), [&](std::size_t i) { return points[i].fn(); });
  const auto wall_end =
      std::chrono::steady_clock::now();  // dpmllint: allow(wall-clock)
  const double wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();

  for (std::size_t i = 0; i < points.size(); ++i) {
    PendingPoint& p = points[i];
    p.store->put(p.row, p.col, values[i]);
    const double us = values[i];
    benchmark::RegisterBenchmark(p.name.c_str(),
                                 [us](benchmark::State& st) {
                                   for (auto _ : st) {
                                     st.SetIterationTime(us * 1e-6);
                                   }
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\n[perf] " << points.size() << " points, jobs="
            << executor.jobs() << ", wall " << wall_s << " s";
  const std::uint64_t events = sim_event_counter().load();
  if (events > 0 && wall_s > 0.0) {
    std::cout << ", " << events << " simulated events ("
              << (static_cast<double>(events) / wall_s) / 1e6 << " Mev/s)";
  }
  const std::uint64_t depth = sim_queue_depth_peak().load();
  if (depth > 0) std::cout << ", peak queue depth " << depth;
  std::cout << ", peak RSS " << sim::peak_rss_kb() << " KB";
  std::cout << "\n";
  points.clear();
  return 0;
}

}  // namespace dpml::benchx
