// Figure 6: leader-count sweep at 1,792 processes on cluster C (64 nodes,
// 28 ppn, Xeon + Omni-Path).
#include "bench/leader_sweep.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  return dpml::benchx::run_leader_sweep("Fig 6", dpml::net::cluster_c(), 64,
                                        28, argc, argv);
}
