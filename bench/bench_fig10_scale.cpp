// Figure 10: MPI_Allreduce latency at large scale — 10,240 processes on
// 160 KNL nodes of cluster D (64 ppn) — proposed DPML (tuned selection)
// vs the MVAPICH2-like and IntelMPI-like baselines.
//
// Expected shape (paper §6.4): the proposed design outperforms the
// MVAPICH2-like baseline by up to ~3x (207%) and the IntelMPI-like baseline
// by up to ~1.5x (48%), with the gap widest for medium/large messages.
// At this scale the per-size selection uses the calibrated dpml_auto table
// rather than a live tuning sweep (the paper likewise applied the
// configuration chosen in its earlier empirical evaluation).
#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  using namespace dpml;
  const auto cfg = net::cluster_d();
  const int nodes = 160;
  const int ppn = 64;
  static benchx::SeriesStore store;

  struct Entry {
    const char* label;
    core::Algorithm algo;
  };
  const Entry entries[] = {
      {"proposed", core::Algorithm::dpml_auto},
      {"mvapich2", core::Algorithm::mvapich2},
      {"intelmpi", core::Algorithm::intelmpi},
  };

  for (std::size_t bytes : benchx::paper_sizes()) {
    for (const Entry& e : entries) {
      core::AllreduceSpec spec;
      spec.algo = e.algo;
      const std::string row = util::format_bytes(bytes);
      benchx::register_point(
          std::string("fig10/bytes:") + row + "/" + e.label, store, row,
          e.label, [=]() {
            return benchx::latency_us(cfg, nodes, ppn, bytes, spec);
          });
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  store.print("Fig 10 — MPI_Allreduce latency (us), 10,240 procs "
              "(160 nodes x 64 ppn), cluster D",
              "msg size");
  double gain_mv = 0;
  double gain_im = 0;
  for (std::size_t bytes : benchx::paper_sizes()) {
    const std::string row = dpml::util::format_bytes(bytes);
    gain_mv = std::max(gain_mv,
                       store.at(row, "mvapich2") / store.at(row, "proposed"));
    gain_im = std::max(gain_im,
                       store.at(row, "intelmpi") / store.at(row, "proposed"));
  }
  std::cout << "\nmax speedup at 10,240 procs: " << gain_mv
            << "x vs mvapich2 (paper: ~3.07x), " << gain_im
            << "x vs intelmpi (paper: ~1.48x)\n";
  return rc;
}
