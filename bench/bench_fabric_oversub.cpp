// Core-oversubscription study under the flow-level fabric (src/fabric).
//
// The LogGP transport treats the switched core as contention-free wire;
// --fabric replaces it with explicit node/leaf/core links shared max-min
// fairly, so a thinner core (oversubscription > 1) genuinely slows the
// cross-leaf rounds of the leader allreduce. This bench sweeps the
// oversubscription factor of one cluster shape (everything else fixed) over
// the DPML leader counts and reports, per message size:
//   1. absolute latency per (oversubscription, leaders), with the classic
//      LogGP transport as the reference row, and
//   2. the contention penalty T_os / T_1:1 per leader count.
//
// Expected shape: at 1:1 the flow fabric tracks LogGP within a few percent
// (same serialization, same latencies — the flows just never contend); as
// the core thins the large-message latencies grow monotonically, and the
// penalty grows with the leader count, since l concurrent leader flows per
// node are exactly the demand an oversubscribed core cannot carry. This is
// the quantitative version of the paper's §6.1 caveat that its clusters'
// fat trees are not non-blocking.
//
// The swept shape uses EDR-like nodes with proc_bw raised to the link rate
// (a single leader can saturate its edge link, as on DMA-capable fat NICs):
// with the stock 2.5 GB/s injection pipe the endpoints, not the core, are
// the bottleneck and every oversubscription row would read the same.
//
// --smoke: tiny shape (4 nodes, 2 leaves) for CI.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

namespace {

using namespace dpml;

struct Config {
  net::ClusterConfig base;            // oversubscription patched per row
  int nodes = 8;
  int ppn = 8;
  std::vector<std::size_t> sizes;
  std::vector<double> oversubs;       // 1.0 first: the non-blocking baseline
  std::vector<int> leaders;
  int iterations = 3;
};

Config make_config(bool smoke) {
  Config c;
  c.base = net::cluster_b();
  c.base.name = "B-oversub";
  c.base.nodes_per_leaf = 4;          // several leaves at bench-able scale
  c.base.nic.proc_bw = c.base.nic.link_bw;  // edge-saturating leaders
  if (smoke) {
    c.base.nodes_per_leaf = 2;        // 4 nodes must still span two leaves
    c.nodes = 4;
    c.ppn = 2;
    c.sizes = {65536};
    c.oversubs = {1.0, 2.0};
    c.leaders = {1, 2};
    c.iterations = 2;
    return c;
  }
  c.nodes = 8;
  c.ppn = 8;
  c.sizes = {65536, 262144, 1048576};
  c.oversubs = {1.0, 4.0 / 3.0, 2.0, 4.0};
  c.leaders = {1, 2, 4, 8};
  return c;
}

double fabric_latency(const Config& c, std::size_t bytes, int leaders,
                      double oversub, bool fabric_on) {
  net::ClusterConfig cfg = c.base;
  cfg.oversubscription = oversub;
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::dpml;
  spec.leaders = leaders;
  core::MeasureOptions opt;
  opt.iterations = c.iterations;
  opt.warmup = 1;
  opt.fabric =
      fabric_on ? fabric::FabricLevel::links : fabric::FabricLevel::none;
  return core::measure_allreduce(cfg, c.nodes, c.ppn, bytes, spec, opt)
      .avg_us;
}

std::string os_row(double oversub) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "os=%.2f", oversub);
  return buf;
}

std::string leader_col(int l) { return "l=" + std::to_string(l); }

}  // namespace

int main(int argc, char** argv) {
  const Config c = make_config(benchx::strip_common_flags(argc, argv).smoke);
  // One latency store per message size: rows = fabric config, cols = leaders.
  std::vector<benchx::SeriesStore> stores(c.sizes.size());
  const std::string loggp = "loggp";

  for (std::size_t si = 0; si < c.sizes.size(); ++si) {
    const std::size_t bytes = c.sizes[si];
    for (int l : c.leaders) {
      // Reference: the classic transport on the non-blocking build.
      const std::string ref_name = "oversub/bytes:" +
                                   util::format_bytes(bytes) + "/loggp/" +
                                   leader_col(l);
      benchx::register_point(ref_name, stores[si], loggp, leader_col(l),
                             [&c, bytes, l]() {
                               return fabric_latency(c, bytes, l, 1.0, false);
                             });
      for (double os : c.oversubs) {
        const std::string name = "oversub/bytes:" + util::format_bytes(bytes) +
                                 "/" + os_row(os) + "/" + leader_col(l);
        benchx::register_point(name, stores[si], os_row(os), leader_col(l),
                               [&c, bytes, l, os]() {
                                 return fabric_latency(c, bytes, l, os, true);
                               });
      }
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);

  std::cout << "\nCore-oversubscription study on cluster " << c.base.name
            << ", " << c.nodes << "x" << c.ppn << " (nodes_per_leaf "
            << c.base.nodes_per_leaf << ", --fabric flow model)\n";
  for (std::size_t si = 0; si < c.sizes.size(); ++si) {
    const std::string size = util::format_bytes(c.sizes[si]);
    stores[si].print("oversub " + size + " — allreduce latency (us) vs core "
                     "oversubscription", "fabric");

    // Contention penalty: each oversubscription row against the 1:1 fabric.
    benchx::SeriesStore ratio;
    for (double os : c.oversubs) {
      if (os == c.oversubs.front()) continue;
      for (int l : c.leaders) {
        ratio.put(os_row(os), leader_col(l),
                  stores[si].at(os_row(os), leader_col(l)) /
                      stores[si].at(os_row(1.0), leader_col(l)));
      }
    }
    ratio.print("oversub " + size + " — contention penalty T_os / T_1:1",
                "fabric");

    const double parity = stores[si].at(os_row(1.0), leader_col(c.leaders.front())) /
                          stores[si].at(loggp, leader_col(c.leaders.front()));
    const double worst = stores[si].at(os_row(c.oversubs.back()),
                                       leader_col(c.leaders.back())) /
                         stores[si].at(os_row(1.0),
                                       leader_col(c.leaders.back()));
    std::cout << "\n" << size << ": 1:1 fabric / LogGP = " << parity
              << " (parity check), " << os_row(c.oversubs.back())
              << " penalty at " << leader_col(c.leaders.back()) << " = "
              << worst << "x\n";
  }
  return rc;
}
