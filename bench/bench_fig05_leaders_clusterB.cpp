// Figure 5: leader-count sweep at 1,792 processes on cluster B (64 nodes,
// 28 ppn, Xeon + EDR InfiniBand).
#include "bench/leader_sweep.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  return dpml::benchx::run_leader_sweep("Fig 5", dpml::net::cluster_b(), 64,
                                        28, argc, argv);
}
