// Figure 1: relative throughput with different numbers of communicating
// pairs, over (a) shared memory, (b) EDR InfiniBand, (c) Omni-Path on Xeon,
// (d) Omni-Path on KNL. Values are aggregate throughput relative to one
// pair (osu_mbw_mr style).
//
// Expected shapes (paper §3): (a) and (b) scale close to the pair count at
// all message sizes; (c)/(d) scale for small messages (Zone A) but flatten
// to ~1 for large messages (Zone C).
#include "apps/osu.hpp"
#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

namespace {

using namespace dpml;
using benchx::SeriesStore;

struct Panel {
  const char* name;
  net::ClusterConfig cfg;
  bool intra_node;
  SeriesStore store;
};

}  // namespace

int main(int argc, char** argv) {
  Panel panels[] = {
      {"Fig 1(a) intra-node (cluster B node)", net::cluster_b(), true, {}},
      {"Fig 1(b) inter-node Xeon+IB (cluster B)", net::cluster_b(), false, {}},
      {"Fig 1(c) inter-node Xeon+Omni-Path (cluster C)", net::cluster_c(),
       false, {}},
      {"Fig 1(d) inter-node KNL+Omni-Path (cluster D)", net::cluster_d(),
       false, {}},
  };
  const int pair_counts[] = {2, 4, 8};

  for (Panel& p : panels) {
    for (std::size_t bytes : benchx::paper_sizes()) {
      for (int pairs : pair_counts) {
        const std::string name = std::string("fig01/") + p.name + "/bytes:" +
                                 util::format_bytes(bytes) +
                                 "/pairs:" + std::to_string(pairs);
        benchx::register_point(
            name, p.store, util::format_bytes(bytes),
            "pairs=" + std::to_string(pairs), [&p, pairs, bytes]() {
              return apps::relative_throughput(p.cfg, pairs, bytes,
                                               p.intra_node);
            });
      }
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  for (const Panel& p : panels) {
    p.store.print(std::string(p.name) + " — relative throughput vs 1 pair",
                  "msg size");
  }
  return rc;
}
