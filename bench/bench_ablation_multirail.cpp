// Ablation: multi-HCA (multi-rail) nodes (paper §4.3's multi-HCA remark).
//
// With two rails, each socket injects through its own HCA. Expected shapes:
//  * flat reduce-scatter+allgather at full subscription is link-bound, so a
//    second rail cuts its large-message latency nearly in half;
//  * DPML-16 barely changes — the multi-leader design already removed the
//    NIC bottleneck (its large-message time is compute/copy dominated),
//    which is the paper's §4.1 point restated as an ablation;
//  * small messages are latency-bound and insensitive to rails everywhere.
#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

int main(int argc, char** argv) {
  using namespace dpml;
  static benchx::SeriesStore store;
  const int nodes = 16;
  const int ppn = 28;

  struct Series {
    const char* label;
    net::ClusterConfig cfg;
    core::Algorithm algo;
    int leaders;
  };
  const Series series[] = {
      {"flat-rsa 1 rail", net::cluster_b(),
       core::Algorithm::reduce_scatter_allgather, 1},
      {"flat-rsa 2 rails", net::with_rails(net::cluster_b(), 2),
       core::Algorithm::reduce_scatter_allgather, 1},
      {"dpml16 1 rail", net::cluster_b(), core::Algorithm::dpml, 16},
      {"dpml16 2 rails", net::with_rails(net::cluster_b(), 2),
       core::Algorithm::dpml, 16},
  };

  for (std::size_t bytes : benchx::paper_sizes()) {
    const std::string row = util::format_bytes(bytes);
    for (const Series& se : series) {
      core::AllreduceSpec spec;
      spec.algo = se.algo;
      spec.leaders = se.leaders;
      benchx::register_point(
          std::string("multirail/bytes:") + row + "/" + se.label, store, row,
          se.label, [=]() {
            return benchx::latency_us(se.cfg, nodes, ppn, bytes, spec);
          });
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  store.print("Ablation — multi-rail nodes, latency (us), cluster B 16x28",
              "msg size");
  std::cout << "\n1M speedup from the second rail: flat-rsa "
            << store.at("1M", "flat-rsa 1 rail") /
                   store.at("1M", "flat-rsa 2 rails")
            << "x, dpml16 "
            << store.at("1M", "dpml16 1 rail") /
                   store.at("1M", "dpml16 2 rails")
            << "x (DPML already removed the NIC bottleneck)\n";
  return rc;
}
