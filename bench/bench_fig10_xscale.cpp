// Figure 10 extension: MPI_Allreduce latency far beyond the paper's
// testbeds — 1,024 to 262,144 nodes (one rank per node, 16 KB, the tuned
// dpml-auto stack) on the cluster B (Xeon + EDR IB) and cluster D
// (KNL + Omni-Path) node/NIC models, extrapolated with net::with_nodes.
//
// At these scales payload buffers alone would dwarf host memory, so the
// sweep runs on the time-only data plane (docs/MODEL.md §10): messages
// carry only (size, dtype, op-cost) metadata and the simulated latencies
// are bit-identical to a payload-mode run. Passing --time-only is
// therefore implied for the full sweep; --smoke keeps a tiny CI shape
// (64 and 512 nodes, 2 ppn) that honors the flag as given.
//
// Flags beyond the common bench set (--smoke, --time-only, --jobs N):
//   --perf-json FILE   write aggregate host-perf counters (events/sec,
//                      peak queue depth, peak RSS, elided payload bytes)
//                      as JSON — appended to BENCH_perf.json by CI
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

namespace {

using namespace dpml;

struct XscaleFlags {
  std::string perf_json;
};

XscaleFlags strip_xscale_flags(int& argc, char** argv) {
  XscaleFlags f;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--perf-json" && i + 1 < argc) {
      f.perf_json = argv[++i];
    } else if (a.rfind("--perf-json=", 0) == 0) {
      f.perf_json = a.substr(12);
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;
  return f;
}

// Per-point perf results, committed by slot index so the post-run aggregate
// is independent of executor scheduling.
std::vector<core::MeasurePerf> perf_slots;

bool write_perf_json(const std::string& path, int points, int jobs,
                     const std::string& data_mode) {
  std::uint64_t events = 0;
  std::uint64_t peak_live = 0;
  std::uint64_t peak_queue = 0;
  std::uint64_t peak_rss = 0;
  std::uint64_t elided = 0;
  double wall_ms = 0.0, cb_hits = 0.0, pl_hits = 0.0;
  for (const core::MeasurePerf& p : perf_slots) {
    events += p.events;
    peak_live = std::max(peak_live, p.peak_live_events);
    peak_queue = std::max(peak_queue, p.peak_queue_depth);
    peak_rss = std::max(peak_rss, p.peak_rss_kb);
    elided += p.elided_bytes;
    wall_ms += p.wall_ms;
    cb_hits += p.callback_pool_hit_rate;
    pl_hits += p.payload_pool_hit_rate;
  }
  const double n = perf_slots.empty()
                       ? 1.0
                       : static_cast<double>(perf_slots.size());
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n"
     << "  \"tool\": \"bench_fig10_xscale\",\n"
     << "  \"data_mode\": \"" << data_mode << "\",\n"
     << "  \"points\": " << points << ",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"events_per_sec\": "
     << (wall_ms > 0.0
             ? static_cast<long long>(static_cast<double>(events) /
                                      (wall_ms / 1e3))
             : 0)
     << ",\n"
     << "  \"peak_live_events\": " << peak_live << ",\n"
     << "  \"peak_queue_depth\": " << peak_queue << ",\n"
     << "  \"peak_rss_kb\": " << peak_rss << ",\n"
     << "  \"elided_bytes\": " << elided << ",\n"
     << "  \"callback_pool_hit_rate\": " << cb_hits / n << ",\n"
     << "  \"payload_pool_hit_rate\": " << pl_hits / n << ",\n"
     << "  \"wall_ms\": " << wall_ms << "\n"
     << "}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::BenchFlags bf = benchx::strip_common_flags(argc, argv);
  const XscaleFlags xf = strip_xscale_flags(argc, argv);

  // The full sweep's top points (262,144 ranks x 16 KB) cannot carry
  // payload on a workstation; force the time-only plane rather than fail.
  if (!bf.smoke && !bf.time_only) {
    std::cerr << "bench_fig10_xscale: extreme-scale sweep runs on the "
                 "time-only data plane (simulated latencies are "
                 "bit-identical); enabling --time-only\n";
    bf.time_only = true;
  }

  core::MeasureOptions opt;
  opt.iterations = 1;
  opt.warmup = 0;
  if (bf.time_only) opt.data_mode = sim::DataMode::timeonly;

  const std::vector<int> node_counts =
      bf.smoke ? std::vector<int>{64, 512}
               : std::vector<int>{1024, 4096, 16384, 65536, 262144};
  const int ppn = bf.smoke ? 2 : 1;
  const std::size_t bytes = 16384;

  const std::vector<net::ClusterConfig> bases = {net::cluster_b(),
                                                 net::cluster_d()};
  static benchx::SeriesStore store;

  int slot = 0;
  for (const net::ClusterConfig& base : bases) {
    for (const int nodes : node_counts) {
      const net::ClusterConfig cfg = net::with_nodes(base, nodes);
      core::AllreduceSpec spec;
      spec.algo = core::Algorithm::dpml_auto;
      const std::string row = std::to_string(nodes);
      const int my_slot = slot++;
      benchx::register_point(
          "fig10x/" + base.name + "/nodes:" + row, store, row, base.name,
          [=]() {
            const core::MeasureResult r = core::measure_allreduce(
                cfg, nodes, ppn, bytes, spec, opt);
            benchx::note_measure_perf(r);
            perf_slots[static_cast<std::size_t>(my_slot)] = r.perf;
            return r.avg_us;
          });
    }
  }
  perf_slots.resize(static_cast<std::size_t>(slot));

  const int rc = benchx::run_benchmarks(argc, argv);
  store.print("Fig 10x — MPI_Allreduce 16 KB latency (us) vs node count, "
                  "ppn=" + std::to_string(ppn) + ", dpml-auto, " +
                  (bf.time_only ? "time-only" : "payload") + " plane",
              "nodes");
  if (!xf.perf_json.empty()) {
    if (!write_perf_json(xf.perf_json, slot, core::default_jobs(),
                         sim::data_mode_name(opt.data_mode))) {
      std::cerr << "cannot write perf json " << xf.perf_json << "\n";
      return 1;
    }
    std::cout << "\nperf counters written to " << xf.perf_json << "\n";
  }
  return rc;
}
