// Figure 9: MPI_Allreduce latency of the proposed design (per-size tuned
// DPML configuration, as in paper §6.4) against the library baselines:
//   (a) cluster A, 448 procs (16x28)  — vs MVAPICH2-like
//   (b) cluster B, 1792 procs (64x28) — vs MVAPICH2-like
//   (c) cluster C, 1792 procs (64x28) — vs MVAPICH2-like and IntelMPI-like
//   (d) cluster D, 1024 procs (32x32) — vs MVAPICH2-like and IntelMPI-like
//
// Expected shapes: proposed <= both baselines across the range; largest
// gains for medium/large messages (paper: up to 3.59x/3.08x vs MVAPICH2 on
// A/B; up to 2.98x/2.3x vs Intel MPI on C/D).
#include <optional>

#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

namespace {

using namespace dpml;

struct Panel {
  const char* name;
  net::ClusterConfig cfg;
  int nodes;
  int ppn;
  bool include_intel;
  benchx::SeriesStore store;
};

// Per-size tuned configuration (the paper's empirical best-config search).
double tuned_latency(const net::ClusterConfig& cfg, int nodes, int ppn,
                     std::size_t bytes) {
  const auto r = core::tune_allreduce(cfg, nodes, ppn, bytes,
                                      benchx::default_opts());
  return r.best.avg_us;
}

}  // namespace

int main(int argc, char** argv) {
  Panel panels[] = {
      {"Fig 9(a) cluster A, 448 procs", net::cluster_a(), 16, 28, false, {}},
      {"Fig 9(b) cluster B, 1792 procs", net::cluster_b(), 64, 28, false, {}},
      {"Fig 9(c) cluster C, 1792 procs", net::cluster_c(), 64, 28, true, {}},
      {"Fig 9(d) cluster D, 1024 procs", net::cluster_d(), 32, 32, true, {}},
  };

  for (Panel& p : panels) {
    for (std::size_t bytes : benchx::paper_sizes()) {
      const std::string row = util::format_bytes(bytes);
      const std::string base = std::string("fig09/") + p.cfg.name +
                               "/bytes:" + row;
      benchx::register_point(base + "/proposed", p.store, row, "proposed",
                             [&p, bytes]() {
                               return tuned_latency(p.cfg, p.nodes, p.ppn,
                                                    bytes);
                             });
      core::AllreduceSpec mv;
      mv.algo = core::Algorithm::mvapich2;
      benchx::register_point(base + "/mvapich2", p.store, row, "mvapich2",
                             [&p, bytes, mv]() {
                               return benchx::latency_us(p.cfg, p.nodes, p.ppn,
                                                         bytes, mv);
                             });
      if (p.include_intel) {
        core::AllreduceSpec im;
        im.algo = core::Algorithm::intelmpi;
        benchx::register_point(base + "/intelmpi", p.store, row, "intelmpi",
                               [&p, bytes, im]() {
                                 return benchx::latency_us(p.cfg, p.nodes,
                                                           p.ppn, bytes, im);
                               });
      }
    }
  }

  const int rc = benchx::run_benchmarks(argc, argv);
  for (const Panel& p : panels) {
    p.store.print(std::string(p.name) + " — MPI_Allreduce latency (us)",
                  "msg size");
    double best_gain = 0;
    std::string best_size;
    for (std::size_t bytes : benchx::paper_sizes()) {
      const std::string row = util::format_bytes(bytes);
      const double gain =
          p.store.at(row, "mvapich2") / p.store.at(row, "proposed");
      if (gain > best_gain) {
        best_gain = gain;
        best_size = row;
      }
    }
    std::cout << "\nmax speedup vs mvapich2 on " << p.cfg.name << ": "
              << best_gain << "x at " << best_size << "\n";
  }
  return rc;
}
